"""Property tests for the evaluation runtime (``repro.runtime``).

The contracts under test are the ones the sweeps rely on:

* ``pmap(fn, items, jobs=N)`` returns the same values in the same order
  as the serial map, for any ``N`` — parallelism is observably invisible;
* cache keys are pure functions of call *content*: stable across
  processes and equal-but-distinct objects, different whenever any PDK or
  knob field differs;
* a cache round-trip through disk returns an equal result object;
* ``explore(jobs>1)`` equals ``explore(jobs=1)`` exactly, and a warm disk
  cache serves a repeat sweep with zero ``simulate`` calls;
* within one batch, calls with identical content evaluate once
  (``dedup_hits``), and memo tables / the fingerprint cache / the
  persistent worker pool are observationally invisible.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.core.dse import DesignCandidate, evaluate_design_point, explore
from repro.core.insights import CapacityPoint, capacity_point
from repro.runtime import (
    MISSING,
    EvaluationEngine,
    IdentityKey,
    MemoTable,
    ResultCache,
    call_key,
    configure,
    default_engine,
    default_jobs,
    dumps,
    from_jsonable,
    loads,
    memoization_disabled,
    pmap,
    pmap_calls,
    reset_default_engine,
    reset_memoization,
    set_memoization,
    shutdown_pool,
    stable_key,
    to_jsonable,
)
from repro.errors import ConfigurationError
from repro.experiments.reporting import format_run_report
from repro.units import MEGABYTE
from repro.workloads import resnet18, alexnet

#: A small but non-trivial joint-DSE grid (4 points) reused across tests.
SMALL_GRID = dict(capacities_bits=(32 * MEGABYTE,), deltas=(1.0, 1.6),
                  betas=(1.0,), tier_pairs=(1, 2))


def _square(x):
    return x * x


def _add(a, b, offset=0):
    return a + b + offset


def _boom(x):
    raise ValueError(f"task failure for {x}")


def _type_name(value):
    return type(value).__name__


@pytest.fixture
def fresh_default_engine():
    """Isolate tests that touch the process-wide default engine."""
    reset_default_engine()
    yield
    reset_default_engine()


class TestPmap:
    @pytest.mark.parametrize("jobs", [1, 2, 3, 8])
    def test_matches_serial_map_in_order_and_values(self, jobs):
        items = list(range(12))
        assert pmap(_square, items, jobs=jobs) == [x * x for x in items]

    def test_jobs_zero_uses_all_cpus(self):
        assert default_jobs() >= 1
        assert pmap(_square, [1, 2, 3], jobs=0) == [1, 4, 9]

    def test_negative_jobs_rejected_only_below_auto(self):
        # jobs<=0 means "auto"; the guard inside pmap still holds.
        assert pmap(_square, [2], jobs=-1) == [4]

    def test_empty_input(self):
        assert pmap(_square, [], jobs=4) == []

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_task_exception_propagates(self, jobs):
        with pytest.raises(ValueError, match="task failure"):
            pmap(_boom, [1, 2, 3], jobs=jobs)

    def test_unpicklable_fn_falls_back_to_serial(self):
        offset = 10
        results = pmap(lambda x: x + offset, [1, 2, 3], jobs=4)
        assert results == [11, 12, 13]

    @pytest.mark.parametrize("jobs", [1, 3])
    def test_pmap_calls_mixed_args_kwargs(self, jobs):
        calls = [((1, 2), {}), ((3, 4), {"offset": 100}), ((0, 0), {})]
        assert pmap_calls(_add, calls, jobs=jobs) == [3, 107, 0]


class TestStableKey:
    def test_is_a_sha256_hex_digest(self, pdk):
        key = stable_key(pdk, 64 * MEGABYTE, 1.6)
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")

    def test_equal_objects_same_key(self, pdk):
        # A freshly reconstructed PDK/network must hash identically.
        assert stable_key(pdk, resnet18(), 1.0) == \
            stable_key(repro.foundry_m3d_pdk(), resnet18(), 1.0)

    def test_stable_across_processes(self, pdk):
        local = stable_key(pdk, resnet18(), 64 * MEGABYTE, 1.6)
        script = (
            "from repro.tech import foundry_m3d_pdk\n"
            "from repro.workloads import resnet18\n"
            "from repro.runtime import stable_key\n"
            "from repro.units import MEGABYTE\n"
            "print(stable_key(foundry_m3d_pdk(), resnet18(), "
            "64 * MEGABYTE, 1.6))\n"
        )
        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, PYTHONPATH=src)
        remote = subprocess.run(
            [sys.executable, "-c", script], env=env, text=True,
            capture_output=True, check=True).stdout.strip()
        assert remote == local

    def test_any_pdk_field_change_changes_key(self, pdk):
        base = stable_key(pdk)
        assert stable_key(pdk.with_ilv_pitch_factor(1.3)) != base
        for field in dataclasses.fields(pdk):
            value = getattr(pdk, field.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            perturbed = dataclasses.replace(pdk, **{field.name: value * 2 + 1})
            assert stable_key(perturbed) != base, field.name

    def test_any_knob_change_changes_key(self, pdk):
        net = resnet18()
        base = call_key(evaluate_design_point, (pdk, net, 64 * MEGABYTE),
                        {"delta": 1.0, "beta": 1.0, "tier_pairs": 1})
        variants = [
            ((pdk, net, 32 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.6, "beta": 1.0, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.3, "tier_pairs": 1}),
            ((pdk, net, 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 2}),
            ((pdk, alexnet(), 64 * MEGABYTE),
             {"delta": 1.0, "beta": 1.0, "tier_pairs": 1}),
        ]
        keys = [call_key(evaluate_design_point, args, kwargs)
                for args, kwargs in variants]
        assert base not in keys
        assert len(set(keys)) == len(keys)

    def test_key_distinguishes_functions(self, pdk):
        assert call_key(_square, (pdk,), {}) != call_key(_type_name, (pdk,), {})


class TestSerialization:
    def test_design_candidate_round_trip(self, pdk):
        candidate = evaluate_design_point(pdk, resnet18(), 32 * MEGABYTE,
                                          delta=1.6, tier_pairs=2)
        data = candidate.to_dict()
        assert candidate == DesignCandidate.from_dict(
            json.loads(json.dumps(data)))

    def test_capacity_point_round_trip(self, pdk):
        point = capacity_point(pdk, resnet18(), 32 * MEGABYTE)
        assert point == CapacityPoint.from_dict(
            json.loads(json.dumps(point.to_dict())))

    def test_from_dict_rejects_other_types(self, pdk):
        point = capacity_point(pdk, resnet18(), 32 * MEGABYTE)
        with pytest.raises(ConfigurationError):
            DesignCandidate.from_dict(point.to_dict())

    def test_benefit_report_round_trip(self, resnet18_benefit):
        assert loads(dumps(resnet18_benefit)) == resnet18_benefit

    def test_containers_round_trip(self):
        value = {"pair": (1, 2.5), "tags": frozenset({"a", "b"}),
                 "levels": {"x", "y"}, "rows": [(1,), (2,)], "none": None}
        assert from_jsonable(to_jsonable(value)) == value

    def test_canonical_text_is_deterministic(self, pdk):
        assert dumps(pdk) == dumps(repro.foundry_m3d_pdk())

    def test_untrusted_module_rejected(self):
        payload = {"__dataclass__": "os.path:join", "fields": {}}
        with pytest.raises((ValueError, TypeError, ConfigurationError)):
            from_jsonable(payload)

    def test_unserializable_value_raises_type_error(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestResultCache:
    def test_memory_round_trip_and_missing_sentinel(self):
        cache = ResultCache()
        assert cache.get("k") is MISSING
        cache.put("k", None)  # a cached None is not a miss
        assert cache.get("k") is None
        assert "k" in cache
        assert len(cache) == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_memory_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert cache.get("b") is MISSING
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_disk_round_trip_returns_equal_candidate(self, pdk, tmp_path):
        candidate = evaluate_design_point(pdk, resnet18(), 32 * MEGABYTE)
        writer = ResultCache(directory=tmp_path)
        key = stable_key(pdk, 32 * MEGABYTE)
        writer.put(key, candidate)
        reader = ResultCache(directory=tmp_path)  # fresh memory tier
        restored = reader.get(key)
        assert restored == candidate
        assert isinstance(restored, DesignCandidate)
        assert reader.stats.disk_hits == 1
        assert reader.get(key) == candidate  # now from memory
        assert reader.stats.memory_hits == 1

    def test_tampered_disk_file_degrades_to_miss(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.put("key", 42)
        (tmp_path / "key.json").write_text("{not json", encoding="utf-8")
        fresh = ResultCache(directory=tmp_path)
        assert fresh.get("key") is MISSING

    def test_stats_counters(self, tmp_path):
        cache = ResultCache(directory=tmp_path)
        cache.get("absent")
        cache.put("k", 7)
        cache.get("k")
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1


class TestEvaluationEngine:
    def test_explore_parallel_identical_to_serial(self, pdk):
        serial = explore(pdk, engine=EvaluationEngine(jobs=1, use_cache=False),
                         **SMALL_GRID)
        parallel = explore(pdk, engine=EvaluationEngine(jobs=4,
                                                        use_cache=False),
                           **SMALL_GRID)
        assert parallel == serial  # dataclass equality: exact floats
        assert [dumps(p) for p in parallel] == [dumps(s) for s in serial]

    def test_memory_cache_hits_within_one_engine(self, pdk):
        engine = EvaluationEngine()
        first = explore(pdk, engine=engine, **SMALL_GRID)
        second = explore(pdk, engine=engine, **SMALL_GRID)
        assert second == first
        stage = engine.report().stage("dse.simulate")
        # Two simulate calls per grid point; within the first batch,
        # repeated (design, network, pdk) triples dedup to one evaluation
        # each, and the repeat sweep is served entirely from cache.
        assert stage.calls == 2 * 2 * len(first)
        assert stage.evaluated == stage.cache_misses
        assert stage.evaluated + stage.dedup_hits == 2 * len(first)
        assert stage.dedup_hits > 0
        assert stage.cache_hits == 2 * len(first)

    def test_warm_disk_cache_runs_zero_evaluations(self, pdk, tmp_path,
                                                   monkeypatch):
        from repro.perf.simulator import simulate

        cold = EvaluationEngine(jobs=2, cache_dir=tmp_path)
        expected = explore(pdk, engine=cold, **SMALL_GRID)
        cold_stage = cold.report().stage("dse.simulate")
        assert cold_stage.evaluated == cold_stage.cache_misses > 0

        # The acceptance bar: a *fresh* engine over the warm directory must
        # answer entirely from disk — the simulator never runs.
        @functools.wraps(simulate)
        def forbidden(*args, **kwargs):
            raise AssertionError("simulate called on warm cache")

        monkeypatch.setattr("repro.core.dse.simulate", forbidden)
        warm = EvaluationEngine(jobs=1, cache_dir=tmp_path)
        repeat = explore(pdk, engine=warm, **SMALL_GRID)
        assert repeat == expected
        stage = warm.report().stage("dse.simulate")
        assert stage.cache_hits == 2 * len(expected)
        assert stage.cache_misses == 0
        assert stage.evaluated == 0

    def test_call_spec_normalization(self):
        engine = EvaluationEngine(use_cache=False)
        results = engine.map(_add, [
            {"a": 1, "b": 2},           # kwargs dict
            (3, 4),                     # positional tuple
            ((5, 6), {"offset": 10}),   # explicit (args, kwargs) pair
        ])
        assert results == [3, 7, 21]
        assert engine.map(_square, [5]) == [25]  # bare scalar argument

    def test_uncacheable_arguments_still_evaluate(self):
        engine = EvaluationEngine()
        assert engine.map(_type_name, [object()], stage="s") == ["object"]
        stage = engine.report().stage("s")
        assert stage.uncacheable == 1
        assert stage.evaluated == 1
        assert stage.cache_hits == stage.cache_misses == 0

    def test_single_call_api_memoizes(self):
        engine = EvaluationEngine(jobs=4)
        assert engine.call(_add, 1, 2, offset=3) == 6
        assert engine.call(_add, 1, 2, offset=3) == 6
        report = engine.report()
        assert report.cache_hits == 1
        assert report.evaluated == 1
        assert engine.jobs == 4  # call() restores the worker count

    def test_report_aggregates_and_stage_lookup(self):
        engine = EvaluationEngine()
        engine.map(_square, [1, 2], stage="a")
        engine.map(_square, [1], stage="b")  # hit: same key as in "a"
        report = engine.report()
        assert report.calls == 3
        assert report.cache_hits == 1
        assert report.stage("a").calls == 2
        with pytest.raises(KeyError):
            report.stage("missing")
        engine.reset_stats()
        assert engine.report().stages == ()

    def test_format_run_report_greppable_total(self):
        engine = EvaluationEngine()
        engine.map(_square, [1, 2, 3], stage="demo")
        text = format_run_report(engine.report())
        assert "demo" in text
        assert "total: 3 calls, 0 hits, 3 misses, 3 evaluated" in text

    def test_rejects_negative_jobs(self):
        with pytest.raises(ConfigurationError):
            EvaluationEngine(jobs=-1)


class TestMemoTables:
    @pytest.fixture(autouse=True)
    def clean_tables(self):
        reset_memoization()
        previous = set_memoization(True)
        yield
        set_memoization(previous)
        reset_memoization()

    def test_hit_and_miss_counting(self):
        table = MemoTable("unit.counting")
        assert table.get("k") is MISSING
        table.put("k", 41)
        assert table.get("k") == 41
        stats = table.stats()
        assert (stats.hits, stats.misses, stats.entries) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_disabled_tables_bypass_storage(self):
        table = MemoTable("unit.disabled")
        with memoization_disabled():
            table.put("k", 1)
            assert table.get("k") is MISSING
        assert len(table) == 0
        # Disabled lookups are not counted: toggling is observationally
        # invisible apart from recomputation.
        assert table.stats().lookups == 0

    def test_fifo_eviction_beyond_bound(self):
        table = MemoTable("unit.bounded", max_entries=2)
        table.put("a", 1)
        table.put("b", 2)
        table.put("c", 3)
        assert table.get("a") is MISSING
        assert table.get("b") == 2
        assert table.get("c") == 3

    def test_identity_key_semantics(self):
        first, second = {"x": 1}, {"x": 1}  # equal but distinct, unhashable
        assert IdentityKey(first) == IdentityKey(first)
        assert hash(IdentityKey(first)) == hash(IdentityKey(first))
        assert IdentityKey(first) != IdentityKey(second)

    def test_simulator_layer_memo_is_bit_identical(self, pdk):
        from repro.arch.accelerator import m3d_design
        from repro.perf.simulator import simulate
        from repro.units import MEGABYTE as MB

        design = m3d_design(pdk, 64 * MB)
        network = resnet18()
        memoized = simulate(design, network, pdk)
        warm = simulate(design, network, pdk)  # repeated shapes hit
        with memoization_disabled():
            reference = simulate(design, network, pdk)
        for run in (memoized, warm):
            assert run.edp == reference.edp
            for got, want in zip(run.layers, reference.layers):
                assert got == want  # exact float equality, field by field

    def test_memo_stats_surface_in_run_report(self, pdk):
        from repro.arch.accelerator import baseline_2d_design
        from repro.perf.simulator import simulate
        from repro.units import MEGABYTE as MB

        engine = EvaluationEngine()
        design = baseline_2d_design(pdk, 32 * MB)
        engine.map(simulate, [{"design": design, "network": resnet18(),
                               "pdk": pdk}], stage="memo-demo")
        report = engine.report()
        by_name = {memo.name: memo for memo in report.memos}
        assert by_name["simulator.layer"].misses > 0
        assert by_name["simulator.layer"].hits > 0  # repeated shapes


_EVALUATIONS = []


def _tracked_square(x):
    _EVALUATIONS.append(x)
    return x * x


class TestDedupAndPool:
    def test_within_batch_dedup_evaluates_once(self):
        _EVALUATIONS.clear()
        engine = EvaluationEngine()
        results = engine.map(_tracked_square, [7, 7, 7, 3], stage="dd")
        assert results == [49, 49, 49, 9]
        assert _EVALUATIONS == [7, 3]
        stage = engine.report().stage("dd")
        assert stage.calls == 4
        assert stage.evaluated == stage.cache_misses == 2
        assert stage.dedup_hits == 2
        assert stage.cache_hits == 0

    def test_dedup_works_without_cache(self):
        _EVALUATIONS.clear()
        engine = EvaluationEngine(use_cache=False)
        assert engine.map(_tracked_square, [5, 5], stage="dd") == [25, 25]
        assert _EVALUATIONS == [5]
        stage = engine.report().stage("dd")
        assert stage.dedup_hits == 1
        assert stage.cache_misses == 0  # no cache to miss

    def test_dedup_disabled_evaluates_every_call(self):
        _EVALUATIONS.clear()
        engine = EvaluationEngine(use_cache=False)
        assert engine.map(_tracked_square, [5, 5], stage="dd",
                          dedup=False) == [25, 25]
        assert _EVALUATIONS == [5, 5]
        assert engine.report().stage("dd").dedup_hits == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_invariant_kwargs_ship_once_and_results_match(self, jobs):
        shared = 100  # same object in every call -> detected invariant
        calls = [((i, 2), {"offset": shared}) for i in range(6)]
        assert pmap_calls(_add, calls, jobs=jobs,
                          invariants={"offset": shared}) == \
            [i + 2 + 100 for i in range(6)]

    def test_engine_parallel_map_with_shared_objects(self, pdk):
        # The engine detects kwargs shared by identity across the batch
        # and ships them through the pool initializer; results must be
        # indistinguishable from the serial path.
        serial = explore(pdk, engine=EvaluationEngine(jobs=1,
                                                      use_cache=False),
                         **SMALL_GRID)
        pooled = explore(pdk, engine=EvaluationEngine(jobs=2,
                                                      use_cache=False),
                         **SMALL_GRID)
        assert pooled == serial

    def test_shutdown_pool_is_idempotent(self):
        assert pmap(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
        shutdown_pool()
        shutdown_pool()
        assert pmap(_square, [4], jobs=2) == [16]

    def test_pool_persists_across_batches(self):
        # sys.modules lookup: the package re-exports a `pmap` *function*,
        # which shadows the submodule on attribute-style imports.
        import repro.runtime.pmap
        pmap_module = sys.modules["repro.runtime.pmap"]

        shutdown_pool()
        pmap(_square, [1, 2, 3, 4], jobs=2)
        first = pmap_module._pool
        pmap(_square, [5, 6, 7, 8], jobs=2)
        assert pmap_module._pool is first  # same workers, args re-shipped
        shutdown_pool()
        assert pmap_module._pool is None


class TestFingerprintCache:
    def test_dumps_matches_uncached_reference(self, pdk):
        from repro.runtime import (
            clear_fingerprint_cache,
            set_fingerprint_cache,
        )

        previous = set_fingerprint_cache(False)
        try:
            reference = dumps([pdk, resnet18(), {"k": (1, 2.5)}])
            set_fingerprint_cache(True)
            clear_fingerprint_cache()
            cold = dumps([pdk, resnet18(), {"k": (1, 2.5)}])
            warm = dumps([pdk, resnet18(), {"k": (1, 2.5)}])
        finally:
            set_fingerprint_cache(previous)
        assert cold == reference
        assert warm == reference


class TestDefaultEngine:
    def test_configure_replaces_default(self, fresh_default_engine):
        engine = configure(jobs=3, use_cache=False)
        assert default_engine() is engine
        assert engine.jobs == 3
        assert engine.cache is None

    def test_reset_creates_fresh_serial_engine(self, fresh_default_engine):
        configure(jobs=5)
        reset_default_engine()
        engine = default_engine()
        assert engine.jobs == 1
        assert engine.cache is not None


class TestSupervisedDispatch:
    """The fault-tolerant dispatcher behind pmap: retries, timeouts,
    pool respawn, and poison quarantine — all deterministic under a
    seeded fault plan."""

    @staticmethod
    def _token(fn, *args):
        from repro.runtime.keys import call_key

        return call_key(fn, args, {})

    def test_transient_retry_is_counted_and_succeeds(self):
        from repro.faults import FaultPlan, FaultRule, injected_faults
        from repro.runtime.pmap import RetryPolicy, pmap_outcomes

        plan = FaultPlan(rules=(FaultRule(
            site="task.transient", match=self._token(_square, 2),
            times=1),))
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        with injected_faults(plan):
            report = pmap_outcomes(_square, [((2,), {}), ((3,), {})],
                                   jobs=1, policy=policy)
        assert [o.value for o in report.outcomes] == [4, 9]
        assert [o.retries for o in report.outcomes] == [1, 0]
        assert report.retries == 1
        assert report.failures == 0

    def test_exhausted_retries_record_the_transient_error(self):
        from repro.errors import TransientError
        from repro.faults import FaultPlan, FaultRule, injected_faults
        from repro.runtime.pmap import RetryPolicy, pmap_outcomes

        plan = FaultPlan(rules=(FaultRule(
            site="task.transient", match=self._token(_square, 2),
            times=0),))
        policy = RetryPolicy(max_retries=1, backoff_base=0.0)
        with injected_faults(plan):
            report = pmap_outcomes(_square, [((2,), {}), ((3,), {})],
                                   jobs=1, policy=policy)
        failed, fine = report.outcomes
        assert not failed.ok and isinstance(failed.error, TransientError)
        assert failed.retries == 1
        assert fine.ok and fine.value == 9

    def test_transient_counts_match_between_serial_and_parallel(
            self, tmp_path):
        from dataclasses import replace
        from repro.faults import FaultPlan, FaultRule, injected_faults
        from repro.runtime.pmap import RetryPolicy, pmap_outcomes

        calls = [((x,), {}) for x in range(20)]
        # `times` budgets need the shared file ledger to span workers:
        # one fresh ledger per run keeps the two runs independent.
        plan = FaultPlan(seed=5, state_dir=str(tmp_path / "serial"),
                         rules=(FaultRule(
                             site="task.transient", rate=0.3, times=1),))
        policy = RetryPolicy(max_retries=2, backoff_base=0.0)
        with injected_faults(plan):
            serial = pmap_outcomes(_square, calls, jobs=1, policy=policy)
        with injected_faults(replace(plan,
                                     state_dir=str(tmp_path / "par"))):
            parallel = pmap_outcomes(_square, calls, jobs=2, policy=policy)
        assert serial.retries == parallel.retries > 0
        assert [o.value for o in serial.outcomes] \
            == [o.value for o in parallel.outcomes]

    def test_poison_task_is_quarantined_not_retried_forever(self, tmp_path):
        from repro.errors import PoisonTaskError
        from repro.faults import FaultPlan, FaultRule, injected_faults
        from repro.runtime.pmap import RetryPolicy, pmap_outcomes

        calls = [((x,), {}) for x in range(8)]
        plan = FaultPlan(state_dir=str(tmp_path), rules=(FaultRule(
            site="task.crash", match=self._token(_square, 3), times=0),))
        policy = RetryPolicy(max_retries=1, backoff_base=0.0,
                             max_pool_deaths=2)
        with injected_faults(plan):
            report = pmap_outcomes(_square, calls, jobs=2, policy=policy)
        outcomes = report.outcomes
        assert not outcomes[3].ok
        assert isinstance(outcomes[3].error, PoisonTaskError)
        assert outcomes[3].pool_deaths == 2
        for index, outcome in enumerate(outcomes):
            if index != 3:
                assert outcome.ok and outcome.value == index * index
        assert report.pool_deaths == 2

    def test_hung_task_times_out_and_retries(self, tmp_path):
        from repro.faults import FaultPlan, FaultRule, injected_faults
        from repro.runtime.pmap import RetryPolicy, pmap_outcomes

        calls = [((x,), {}) for x in range(6)]
        plan = FaultPlan(state_dir=str(tmp_path), rules=(FaultRule(
            site="task.hang", match=self._token(_square, 2), times=1,
            hang_seconds=30.0),))
        policy = RetryPolicy(max_retries=2, backoff_base=0.0,
                             task_timeout=0.8)
        with injected_faults(plan):
            report = pmap_outcomes(_square, calls, jobs=2, policy=policy)
        assert [o.value for o in report.outcomes] \
            == [x * x for x in range(6)]
        assert report.timeouts == 1
        assert report.outcomes[2].retries >= 1

    def test_pmap_calls_raises_the_original_error_type(self):
        with pytest.raises(ValueError, match="task failure for 1"):
            pmap_calls(_boom, [((1,), {})], jobs=2)
