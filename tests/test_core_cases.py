"""Cases 1-3 of the analytical framework (Obs. 7, 8, 9)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.multitier import multitier_study, sweep_tiers
from repro.core.relaxed_fet import (
    relaxed_fet_study,
    reoptimized_2d_cs_count,
    sweep_fet_width,
)
from repro.core.via_pitch import effective_cell_growth, sweep_via_pitch, via_pitch_study
from repro.workloads.models import Network, resnet18


# --- Case 1: relaxed FET width --------------------------------------------------

def test_delta_one_reproduces_case_study(pdk):
    result = relaxed_fet_study(1.0, pdk)
    assert result.n_cs_2d == 1
    assert result.n_cs_m3d == 8
    assert result.edp_benefit == pytest.approx(5.66, rel=0.05)


def test_no_edp_loss_to_1p6(pdk):
    """Obs. 7: benefits unchanged up to 1.6x relaxed widths."""
    reference = relaxed_fet_study(1.0, pdk).edp_benefit
    for delta in (1.2, 1.4, 1.6):
        result = relaxed_fet_study(delta, pdk)
        assert result.edp_benefit == pytest.approx(reference, rel=0.02), delta


def test_benefits_decline_beyond_1p7(pdk):
    flat = relaxed_fet_study(1.6, pdk).edp_benefit
    declined = relaxed_fet_study(2.0, pdk).edp_benefit
    assert declined < 0.6 * flat


def test_small_benefits_retained_at_2p5(pdk):
    """Obs. 7: small benefits retained even at 2.5x relaxed widths."""
    result = relaxed_fet_study(2.5, pdk)
    assert 1.0 < result.edp_benefit < 2.0


def test_2d_baseline_gains_cs_when_footprint_grows(pdk):
    result = relaxed_fet_study(2.0, pdk)
    assert result.n_cs_2d > 1
    assert result.n_cs_m3d > 8


def test_reoptimized_cs_count_eq9():
    assert reoptimized_2d_cs_count(10.0, 8.0, 1.0) == 3
    assert reoptimized_2d_cs_count(8.0, 8.0, 1.0) == 1
    assert reoptimized_2d_cs_count(7.0, 8.0, 1.0) == 1


def test_delta_below_one_rejected(pdk):
    with pytest.raises(ConfigurationError):
        relaxed_fet_study(0.9, pdk)


def test_sweep_fet_width_ordered(pdk):
    results = sweep_fet_width((1.0, 1.5, 2.0), pdk)
    assert [r.delta for r in results] == [1.0, 1.5, 2.0]


# --- Case 2: via pitch -----------------------------------------------------------

def test_cell_growth_one_at_fine_pitch(pdk):
    assert effective_cell_growth(pdk, 1.0) == pytest.approx(1.0)


def test_cell_growth_quadratic_once_via_limited(pdk):
    g2 = effective_cell_growth(pdk, 2.0)
    g4 = effective_cell_growth(pdk, 4.0)
    assert g4 == pytest.approx(4 * g2, rel=0.01)


def test_benefits_unchanged_to_beta_1p3(pdk):
    """Obs. 8: up to 1.3x pitch, benefits do not change."""
    reference = via_pitch_study(1.0, pdk).edp_benefit
    result = via_pitch_study(1.3, pdk)
    assert result.edp_benefit == pytest.approx(reference, rel=0.02)


def test_benefits_limited_at_beta_1p6(pdk):
    """Obs. 8: at 1.6x pitch the benefit is limited to none."""
    result = via_pitch_study(1.6, pdk)
    assert result.edp_benefit < 2.0


def test_via_pitch_equivalent_to_width_relaxation(pdk):
    """Case 2 reduces to Case 1 at delta_eff = cell growth."""
    beta = 1.5
    growth = effective_cell_growth(pdk, beta)
    case2 = via_pitch_study(beta, pdk)
    case1 = relaxed_fet_study(growth, pdk)
    assert case2.edp_benefit == pytest.approx(case1.edp_benefit, rel=0.02)


def test_sweep_via_pitch_monotone_nonincreasing(pdk):
    results = sweep_via_pitch((1.0, 1.3, 1.5, 1.7, 2.0), pdk)
    benefits = [r.edp_benefit for r in results]
    assert benefits[0] == max(benefits)
    assert benefits[-1] < benefits[0]


# --- Case 3: interleaved tiers ------------------------------------------------------

def test_single_pair_matches_case_study(pdk):
    result = multitier_study(1, pdk)
    assert result.n_cs == 8
    assert result.edp_benefit == pytest.approx(5.66, rel=0.05)


def test_second_pair_boost(pdk):
    """Obs. 9: one extra pair lifts ResNet-18 from ~5.7x to ~6.9x."""
    result = multitier_study(2, pdk)
    assert result.n_cs == 16
    assert result.edp_benefit == pytest.approx(6.9, rel=0.05)


def test_benefit_plateaus(pdk):
    """Obs. 9: the benefit plateaus near 7.1x as CSs exceed N#."""
    results = sweep_tiers(6, pdk)
    plateau = max(r.edp_benefit for r in results)
    assert plateau == pytest.approx(7.1, rel=0.05)
    assert results[-1].edp_benefit == pytest.approx(plateau, rel=0.05)


def test_parallel_layer_approaches_23x(pdk):
    """Obs. 9: a highly parallelizable layer (L4.1 CONV2, N# = 32)
    approaches ~23x; our plateau lands within ~35% (see EXPERIMENTS.md)."""
    network = resnet18()
    single = Network(name="single", layers=(network.layer("L4.1 CONV2"),))
    result = multitier_study(4, pdk, network=single)
    assert result.edp_benefit > 20.0


def test_thermal_rise_recorded(pdk):
    result = multitier_study(4, pdk)
    assert result.temperature_rise > 0
    assert result.thermal_ok  # 20 MHz chips are thermally trivial


def test_zero_pairs_rejected(pdk):
    with pytest.raises(ConfigurationError):
        multitier_study(0, pdk)
