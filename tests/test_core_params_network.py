"""Framework parameter extraction and the layer-level analytical model."""

import pytest

from repro.errors import ConfigurationError
from repro.arch import baseline_2d_design, m3d_design
from repro.core.network_model import analyze_layer, analyze_network, effective_throughput
from repro.core.params import design_point, params_from_designs
from repro.perf import compare_designs, simulate
from repro.units import MEGABYTE
from repro.workloads import alexnet, build_network, resnet18


def test_params_extraction(pdk, baseline, m3d):
    params = params_from_designs(baseline, m3d, pdk)
    assert params.n_cs_m3d == 8
    assert 7.0 <= params.gamma_cells < 8.5
    assert 0 < params.gamma_perif < 1.0
    assert params.cycle_time == pytest.approx(50e-9)


def test_params_design_points(pdk, baseline, m3d):
    params = params_from_designs(baseline, m3d, pdk)
    assert params.baseline.n_cs == 1
    assert params.m3d.n_cs == 8
    assert params.m3d.bandwidth_bits_per_cycle == pytest.approx(
        8 * params.baseline.bandwidth_bits_per_cycle)


def test_params_reject_different_capacity(pdk, baseline):
    other = m3d_design(pdk, capacity_bits=32 * MEGABYTE)
    with pytest.raises(ConfigurationError, match="iso-on-chip-memory"):
        params_from_designs(baseline, other, pdk)


def test_params_reject_larger_m3d_footprint(pdk, m3d):
    small = baseline_2d_design(pdk, capacity_bits=32 * MEGABYTE)
    with pytest.raises(ConfigurationError):
        params_from_designs(small, m3d.with_n_cs(8), pdk)


def test_design_point_idle_energies_positive(pdk, baseline):
    point = design_point(baseline, pdk)
    assert point.cs_idle_energy_per_cycle > 0
    assert point.memory_idle_energy_per_cycle > 0


def test_effective_throughput_below_peak(baseline, resnet18_network):
    for layer in resnet18_network.weighted_layers():
        p_eff = effective_throughput(baseline, layer)
        assert 0 < p_eff <= baseline.cs.array.peak_macs_per_cycle


def test_effective_throughput_high_for_big_maps(baseline, resnet18_network):
    """56x56 layers amortize the fill: P_eff within ~2% of peak."""
    layer = resnet18_network.layer("L1.0 CONV1")
    p_eff = effective_throughput(baseline, layer)
    assert p_eff > 0.98 * 256


def test_analyze_layer_roofline(pdk, m3d, resnet18_network):
    result = analyze_layer(m3d, resnet18_network.layer("L3.0 CONV2"), pdk)
    assert result.cycles == pytest.approx(
        max(result.compute_cycles, result.transfer_cycles))
    assert result.used_cs == 8


def test_analyze_network_totals(pdk, baseline, resnet18_network):
    result = analyze_network(baseline, resnet18_network, pdk)
    assert result.cycles == pytest.approx(
        sum(l.cycles for l in result.layers))
    assert result.edp == pytest.approx(result.energy * result.runtime)


@pytest.mark.parametrize("name", ["resnet18", "alexnet", "vgg16c"])
def test_analytic_within_10pct_of_simulator(pdk, baseline, m3d, name):
    """The paper's Obs. 4 claim: analytical EDP benefits within 10% of the
    architectural simulator for its evaluated workloads."""
    network = build_network(name)
    sim = compare_designs(
        simulate(baseline, network, pdk), simulate(m3d, network, pdk))
    a2 = analyze_network(baseline, network, pdk)
    a3 = analyze_network(m3d, network, pdk)
    analytic_edp = (a2.runtime / a3.runtime) * (a2.energy / a3.energy)
    assert analytic_edp == pytest.approx(sim.edp_benefit, rel=0.10)


@pytest.mark.parametrize("name", ["resnet50", "resnet152"])
def test_analytic_within_20pct_for_bottleneck_resnets(pdk, baseline, m3d, name):
    """Bottleneck 1x1 convs stress the max() roofline; agreement loosens
    to 20% (documented in EXPERIMENTS.md)."""
    network = build_network(name)
    sim = compare_designs(
        simulate(baseline, network, pdk), simulate(m3d, network, pdk))
    a2 = analyze_network(baseline, network, pdk)
    a3 = analyze_network(m3d, network, pdk)
    analytic_edp = (a2.runtime / a3.runtime) * (a2.energy / a3.energy)
    assert analytic_edp == pytest.approx(sim.edp_benefit, rel=0.20)


def test_analyze_network_rejects_oversized(pdk, baseline):
    from repro.workloads.models import vgg16
    with pytest.raises(ConfigurationError):
        analyze_network(baseline, vgg16(), pdk)


def test_analytic_speedup_direction(pdk, baseline, m3d):
    """The analytic model must agree on who wins."""
    network = alexnet()
    a2 = analyze_network(baseline, network, pdk)
    a3 = analyze_network(m3d, network, pdk)
    assert a3.runtime < a2.runtime
