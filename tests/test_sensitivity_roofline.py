"""Parameter sensitivity and roofline analyses."""

import pytest

from repro.errors import ConfigurationError
from repro.core.framework import Workload
from repro.core.roofline import roofline
from repro.core.sensitivity import (
    PARAMETERS,
    elasticity,
    sensitivity_profile,
)
from repro.core.params import design_point
from repro.workloads.models import alexnet, resnet18
from repro.workloads.transformer import tiny_encoder


@pytest.fixture(scope="module")
def points(pdk, baseline, m3d):
    return design_point(baseline, pdk), design_point(m3d, pdk)


@pytest.fixture(scope="module")
def compute_bound():
    return Workload(compute_ops=16e9, data_bits=1e9)


@pytest.fixture(scope="module")
def memory_bound():
    return Workload(compute_ops=1e9, data_bits=16e9)


# --- sensitivity -----------------------------------------------------------------

def test_compute_bound_sensitive_to_peak(points, compute_bound):
    base, m3d = points
    result = elasticity(compute_bound, base, m3d, "peak_ops_per_cycle")
    assert result.value > 0.5  # more M3D compute -> more benefit


def test_compute_bound_insensitive_to_bandwidth(points, compute_bound):
    base, m3d = points
    result = elasticity(compute_bound, base, m3d,
                        "bandwidth_bits_per_cycle")
    assert abs(result.value) < 0.05


def test_memory_bound_sensitive_to_bandwidth(points, memory_bound):
    base, m3d = points
    result = elasticity(memory_bound, base, m3d,
                        "bandwidth_bits_per_cycle")
    assert result.value > 0.5


def test_energy_constants_cancel_when_shared(points, compute_bound):
    """Perturbing alpha or E_C on BOTH sides barely moves the ratio —
    the calibration-robustness claim of EXPERIMENTS.md."""
    base, m3d = points
    for parameter in ("memory_energy_per_bit", "compute_energy_per_op"):
        result = elasticity(compute_bound, base, m3d, parameter,
                            applied_to="both")
        assert abs(result.value) < 0.1, parameter


def test_profile_sorted_by_magnitude(points, compute_bound):
    base, m3d = points
    profile = sensitivity_profile(compute_bound, base, m3d)
    magnitudes = [abs(e.value) for e in profile]
    assert magnitudes == sorted(magnitudes, reverse=True)
    assert {e.parameter for e in profile} == set(PARAMETERS)


def test_unknown_parameter_rejected(points, compute_bound):
    base, m3d = points
    with pytest.raises(ConfigurationError):
        elasticity(compute_bound, base, m3d, "n_cs")


# --- roofline ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def resnet_roofline(pdk, baseline):
    return roofline(baseline, resnet18(), pdk)


def test_points_under_ceiling(resnet_roofline):
    for point in resnet_roofline.points:
        assert point.achieved <= resnet_roofline.ceiling(point.intensity) \
            * (1 + 1e-9)


def test_resnet_convs_compute_bound(resnet_roofline):
    """3x3 convs reuse weights heavily -> right of the ridge."""
    by_name = {p.layer: p for p in resnet_roofline.points}
    assert by_name["L2.0 CONV2"].bound == "compute"
    assert by_name["L4.1 CONV2"].bound == "compute"


def test_encoder_layers_memory_bound(pdk, baseline):
    """Batch-1 FC chains sit left of the ridge (Obs. 5's regime)."""
    model = roofline(baseline, tiny_encoder(), pdk)
    assert len(model.memory_bound_layers()) == len(model.points)


def test_batching_moves_encoder_right(pdk, baseline):
    one = roofline(baseline, tiny_encoder(), pdk, batch=1)
    many = roofline(baseline, tiny_encoder(), pdk, batch=256)
    point_one = one.points[0]
    point_many = many.points[0]
    assert point_many.intensity > point_one.intensity
    assert point_many.achieved > point_one.achieved


def test_ridge_consistency(resnet_roofline):
    ridge = resnet_roofline.ridge_intensity
    assert resnet_roofline.ceiling(ridge) == pytest.approx(
        resnet_roofline.peak_ops_per_cycle)
    assert resnet_roofline.ceiling(ridge / 2) == pytest.approx(
        resnet_roofline.peak_ops_per_cycle / 2)


def test_m3d_raises_both_ceilings(pdk, baseline, m3d):
    two_d = roofline(baseline, resnet18(), pdk)
    three_d = roofline(m3d, resnet18(), pdk)
    assert three_d.peak_ops_per_cycle == 8 * two_d.peak_ops_per_cycle
    assert three_d.bandwidth_bytes_per_cycle \
        == 8 * two_d.bandwidth_bytes_per_cycle
    # Same banking ratio -> same ridge: the M3D chip is a scaled-up 2D chip.
    assert three_d.ridge_intensity == pytest.approx(two_d.ridge_intensity)


def test_pool_layers_excluded(resnet_roofline):
    names = [p.layer for p in resnet_roofline.points]
    assert "POOL" not in names
