"""Spec-driven runs match the legacy entry points bit-for-bit.

Every rewired study now constructs its design pair through
``resolve(DesignSpec(...))``; these tests pin the refactor by comparing
each legacy sweep against the equivalent batch of spec evaluations with
exact ``==`` — same resolver, same simulator, so the floats must be
identical, not merely close.
"""

from repro.core.dse import design_point_spec, explore
from repro.core.insights import sweep_rram_capacity
from repro.core.multitier import sweep_tiers
from repro.core.relaxed_fet import sweep_fet_width
from repro.core.sensitivity import (
    sensitivity_profile,
    sensitivity_profile_from_spec,
)
from repro.core.via_pitch import sweep_via_pitch
from repro.spec import ArchSpec, DesignSpec, TechSpec, evaluate_specs
from repro.units import MEGABYTE

CAPACITIES = tuple(mb * MEGABYTE for mb in (16, 32, 64))
DELTAS = (1.0, 1.6, 2.0)
BETAS = (1.0, 1.3, 1.6)


def test_capacity_sweep_matches_spec_evaluations(pdk, resnet18_network):
    legacy = sweep_rram_capacity(CAPACITIES, pdk=pdk,
                                 network=resnet18_network)
    evaluations = evaluate_specs(
        [DesignSpec(arch=ArchSpec(capacity_bits=capacity))
         for capacity in CAPACITIES], pdk=pdk)
    for point, evaluation in zip(legacy, evaluations):
        assert point.capacity_bits == evaluation.spec.arch.capacity_bits
        assert point.n_cs == evaluation.n_cs_m3d
        assert point.speedup == evaluation.speedup
        assert point.edp_benefit == evaluation.edp_benefit


def test_fet_width_sweep_matches_spec_evaluations(pdk):
    legacy = sweep_fet_width(DELTAS, pdk=pdk)
    evaluations = evaluate_specs(
        [DesignSpec(tech=TechSpec(delta=delta),
                    arch=ArchSpec(baseline="reoptimized"))
         for delta in DELTAS], pdk=pdk)
    for result, evaluation in zip(legacy, evaluations):
        assert result.n_cs_2d == evaluation.n_cs_2d
        assert result.n_cs_m3d == evaluation.n_cs_m3d
        assert result.footprint == evaluation.footprint
        assert result.benefit.speedup == evaluation.speedup
        assert result.benefit.edp_benefit == evaluation.edp_benefit


def test_via_pitch_sweep_matches_spec_evaluations(pdk):
    legacy = sweep_via_pitch(BETAS, pdk=pdk)
    evaluations = evaluate_specs(
        [DesignSpec(tech=TechSpec(beta=beta),
                    arch=ArchSpec(baseline="reoptimized"))
         for beta in BETAS], pdk=pdk)
    for result, evaluation in zip(legacy, evaluations):
        assert result.n_cs_2d == evaluation.n_cs_2d
        assert result.n_cs_m3d == evaluation.n_cs_m3d
        assert result.benefit.speedup == evaluation.speedup
        assert result.benefit.edp_benefit == evaluation.edp_benefit


def test_tier_sweep_matches_spec_evaluations(pdk):
    legacy = sweep_tiers(3, pdk=pdk)
    evaluations = evaluate_specs(
        [DesignSpec(arch=ArchSpec(tier_pairs=pairs))
         for pairs in (1, 2, 3)], pdk=pdk)
    for result, evaluation in zip(legacy, evaluations):
        assert result.n_cs == evaluation.n_cs_m3d
        assert result.speedup == evaluation.speedup
        assert result.benefit.edp_benefit == evaluation.edp_benefit


def test_dse_grid_matches_spec_evaluations(pdk):
    capacities = (32 * MEGABYTE, 64 * MEGABYTE)
    candidates = explore(pdk, capacities_bits=capacities, deltas=DELTAS,
                         betas=(1.0,), tier_pairs=(1,))
    specs = [design_point_spec(capacity, delta=delta)
             for capacity in capacities for delta in DELTAS]
    evaluations = evaluate_specs(specs, pdk=pdk)
    assert len(candidates) == len(evaluations)
    for candidate, evaluation in zip(candidates, evaluations):
        assert candidate.capacity_bits == evaluation.spec.arch.capacity_bits
        assert candidate.delta == evaluation.spec.tech.delta
        assert candidate.n_cs == evaluation.n_cs_m3d
        assert candidate.n_cs_2d == evaluation.n_cs_2d
        assert candidate.footprint == evaluation.footprint
        assert candidate.speedup == evaluation.speedup
        assert candidate.edp_benefit == evaluation.edp_benefit


def test_sensitivity_profile_matches_spec_route(pdk, baseline, m3d,
                                                resnet18_network):
    from repro.core.framework import Workload
    from repro.core.params import design_point

    workload = Workload(
        compute_ops=float(resnet18_network.total_macs),
        data_bits=float(resnet18_network.weight_bits(8)))
    legacy = sensitivity_profile(workload, design_point(baseline, pdk),
                                 design_point(m3d, pdk))
    from_spec = sensitivity_profile_from_spec(DesignSpec(), pdk=pdk)
    assert from_spec == legacy


def test_default_spec_matches_the_headline_benefit(pdk, resnet18_benefit):
    (evaluation,) = evaluate_specs([DesignSpec()], pdk=pdk)
    assert evaluation.speedup == resnet18_benefit.speedup
    assert evaluation.edp_benefit == resnet18_benefit.edp_benefit
