"""Alternative BEOL memory technology presets."""

import pytest

from repro.tech.memories import (
    FEFET,
    MEMORY_TECHNOLOGIES,
    PCM,
    RRAM,
    SRAM_6T,
    STT_MRAM,
    beol_technologies,
    memory_technology,
)
from repro.tech.node import NODE_130NM


def test_presets_registered():
    assert set(MEMORY_TECHNOLOGIES) == {
        "rram", "stt_mram", "fefet", "pcm", "sram_6t"}


def test_lookup_by_name():
    assert memory_technology("fefet") is FEFET


def test_unknown_lookup_raises():
    with pytest.raises(KeyError):
        memory_technology("dram")


def test_sram_is_not_beol_compatible():
    assert not SRAM_6T.beol_compatible
    assert SRAM_6T not in beol_technologies()


def test_all_beol_presets_are_nonvolatile():
    for tech in beol_technologies():
        assert tech.nonvolatile


def test_rram_preset_matches_pdk_constants(pdk):
    cell = RRAM.cell(NODE_130NM)
    assert cell.area(None) == pytest.approx(pdk.rram_cell.area(None))
    assert cell.read_energy_per_bit == pdk.rram_cell.read_energy_per_bit


def test_density_ordering():
    assert PCM.bitcell_area_f2 < FEFET.bitcell_area_f2 \
        < RRAM.bitcell_area_f2 < STT_MRAM.bitcell_area_f2 \
        < SRAM_6T.bitcell_area_f2


def test_sram_about_4x_rram():
    assert SRAM_6T.density_ratio_vs(RRAM) == pytest.approx(4.0)


def test_cell_instantiation_carries_energies():
    cell = STT_MRAM.cell(NODE_130NM)
    assert cell.read_energy_per_bit == STT_MRAM.read_energy_per_bit
    assert cell.write_energy_per_bit == STT_MRAM.write_energy_per_bit


def test_writes_cost_more_than_reads():
    for tech in MEMORY_TECHNOLOGIES.values():
        assert tech.write_energy_per_bit >= tech.read_energy_per_bit


def test_pdk_with_memory_cell(pdk):
    swapped = pdk.with_memory_cell(FEFET.cell(pdk.node))
    assert swapped.rram_bitcell_area < pdk.rram_bitcell_area
    assert pdk.rram_bitcell_area == RRAM.cell(pdk.node).area(None)
