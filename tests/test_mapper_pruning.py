"""Branch-and-bound tiling search: exactness and admissibility.

The pruned search (``best_slice_cost(prune=True)``) must return the
*identical* tiling and cost as the exhaustive reference scan for every
(architecture, layer) pair the repo evaluates — not approximately equal:
``MappingCost`` equality compares the chosen tiling and every float.  The
argument (DESIGN.md, "Branch-and-bound tiling search") rests on two
properties exercised here:

* admissibility — ``lower_bound(candidate) <= evaluate(candidate).edp``
  for every fitting candidate;
* feasibility mirroring — the bound is ``None`` exactly when
  ``tile_fits`` rejects the candidate.
"""

from __future__ import annotations

import pytest

from repro.arch.table2 import table_ii_architectures
from repro.errors import MappingError
from repro.mapper.cost import CostModel
from repro.mapper.engine import MapperEngine
from repro.mapper.loopnest import loop_nest_of
from repro.runtime.memo import memoization_disabled
from repro.workloads.layers import LayerKind
from repro.workloads.models import alexnet, resnet18, vgg16

NETWORKS = (resnet18, alexnet, vgg16)


def _mappable_nests(arch):
    """Every distinct (network, layer) nest the mapper would search."""
    for build in NETWORKS:
        for layer in build().layers:
            if layer.kind == LayerKind.POOL:
                continue
            yield build().name, layer


@pytest.mark.parametrize("arch", table_ii_architectures(),
                         ids=lambda arch: arch.name)
def test_pruned_search_identical_to_exhaustive(arch):
    """Acceptance bar: same tiling, same cost, across every architecture
    and every ResNet-18/AlexNet/VGG-16 conv/FC layer."""
    engine = MapperEngine(arch)
    checked = 0
    with memoization_disabled():
        for network_name, layer in _mappable_nests(arch):
            nest = loop_nest_of(layer)
            try:
                exhaustive = engine.best_slice_cost(nest, prune=False)
            except MappingError:
                with pytest.raises(MappingError):
                    engine.best_slice_cost(nest, prune=True)
                continue
            pruned = engine.best_slice_cost(nest, prune=True)
            # Dataclass equality: identical tiling and bit-identical floats.
            assert pruned == exhaustive, (network_name, layer.name)
            checked += 1
    assert checked > 0


@pytest.mark.parametrize("arch", table_ii_architectures()[:2],
                         ids=lambda arch: arch.name)
def test_lower_bound_admissible_and_mirrors_feasibility(arch):
    engine = MapperEngine(arch)
    model = CostModel(arch)
    nests = {loop_nest_of(layer) for _, layer in _mappable_nests(arch)}
    for nest in sorted(nests, key=lambda n: (n.k, n.c, n.ox, n.oy, n.r)):
        bounds = model.search_bounds(nest, engine.rram_channel_bits)
        for tiling in engine.candidate_tilings(nest):
            bound = bounds.lower_bound(tiling.order, tiling.tk, tiling.tc,
                                       tiling.toy)
            fits = model.tile_fits(nest, tiling)
            assert (bound is None) == (not fits), (nest, tiling)
            if not fits:
                continue
            cost = model.evaluate(
                nest, tiling, rram_channel_bits=engine.rram_channel_bits)
            assert bound <= cost.edp, (nest, tiling)


def test_pruning_skips_most_evaluations():
    """The point of the exercise: far fewer full evaluations."""
    from repro.runtime.memo import (
        counter_stats,
        reset_memoization,
        set_memoization,
    )

    arch = table_ii_architectures()[0]
    reset_memoization()
    previous = set_memoization(False)
    try:
        MapperEngine(arch).map_network(resnet18())
        search = next(c for c in counter_stats() if c.name == "mapper.search")
        counts = dict(search.values)
    finally:
        set_memoization(previous)
        reset_memoization()
    assert counts["pruned"] > 5 * counts["evaluated"]
