"""Extension studies: memory technologies, BEOL logic, precision."""

import pytest

from repro.experiments.ext_beol_logic import (
    cnfet_cs_fmax,
    cnfet_tier_free_area,
    extra_cnfet_cs_count,
    format_beol_logic,
    run_beol_logic,
)
from repro.experiments.ext_memtech import format_memtech, run_memtech
from repro.experiments.ext_precision import format_precision, run_precision
from repro.units import MEGABYTE


@pytest.fixture(scope="module")
def memtech_rows(pdk):
    return run_memtech(pdk)


@pytest.fixture(scope="module")
def beol_result(pdk):
    return run_beol_logic(pdk)


@pytest.fixture(scope="module")
def precision_rows(pdk):
    return run_precision(pdk)


# --- memory technologies ---------------------------------------------------------

def test_memtech_covers_all_beol_presets(memtech_rows):
    names = {row.technology.name for row in memtech_rows}
    assert names == {"rram", "stt_mram", "fefet", "pcm"}


def test_memtech_rram_matches_case_study(memtech_rows, resnet18_benefit):
    rram = next(r for r in memtech_rows if r.technology.name == "rram")
    assert rram.n_cs == 8
    assert rram.edp_benefit == pytest.approx(
        resnet18_benefit.edp_benefit, rel=0.01)


def test_memtech_cs_count_tracks_gamma(memtech_rows):
    """N follows gamma_cells across technologies (Eq. 2 transferability)."""
    ordered = sorted(memtech_rows, key=lambda r: r.gamma_cells)
    cs_counts = [row.n_cs for row in ordered]
    assert cs_counts == sorted(cs_counts)


def test_memtech_denser_cells_smaller_chips(memtech_rows):
    by_name = {row.technology.name: row for row in memtech_rows}
    assert by_name["pcm"].footprint < by_name["rram"].footprint \
        < by_name["stt_mram"].footprint


def test_memtech_all_benefit(memtech_rows):
    for row in memtech_rows:
        assert row.edp_benefit > 3.0


def test_memtech_format(memtech_rows):
    text = format_memtech(memtech_rows)
    assert "stt_mram" in text and "gamma_cells" in text


# --- BEOL logic tier ---------------------------------------------------------------

def test_beol_free_area_is_footprint_minus_cells(pdk, baseline):
    free = cnfet_tier_free_area(pdk, 64 * MEGABYTE)
    expected = baseline.area.footprint - baseline.area.cells
    assert free == pytest.approx(expected)


def test_beol_extra_cs_count(pdk):
    assert extra_cnfet_cs_count(pdk, 64 * MEGABYTE) == 3


def test_cnfet_cs_still_meets_20mhz(pdk):
    assert cnfet_cs_fmax(pdk) > 20e6


def test_cnfet_cs_slower_than_silicon(pdk):
    from repro.experiments.ext_beol_logic import cnfet_cs_fmax
    nand = pdk.silicon_library.gate_equivalent
    si_fmax = 1.0 / (24 * nand.delay_with_load(2.0 * nand.input_capacitance))
    assert cnfet_cs_fmax(pdk) < si_fmax


def test_beol_logic_improves_benefit(beol_result):
    assert beol_result.si_cs == 8
    assert beol_result.cnfet_cs == 3
    assert beol_result.edp_benefit > beol_result.baseline_edp_benefit


def test_beol_logic_thermally_fine_at_20mhz(beol_result):
    assert beol_result.thermal_ok
    assert beol_result.temperature_rise < 1.0


def test_beol_logic_format(beol_result):
    text = format_beol_logic(beol_result)
    assert "CNFET" in text and "fmax" in text


# --- precision --------------------------------------------------------------------

def test_precision_rows(precision_rows):
    assert [row.precision_bits for row in precision_rows] == [4, 8, 16]


def test_precision_8bit_matches_case_study(precision_rows, resnet18_benefit):
    row8 = next(r for r in precision_rows if r.precision_bits == 8)
    assert row8.n_cs == 8
    assert row8.edp_benefit == pytest.approx(
        resnet18_benefit.edp_benefit, rel=0.01)


def test_precision_16bit_excludes_big_models(precision_rows):
    row16 = next(r for r in precision_rows if r.precision_bits == 16)
    assert "resnet152" not in row16.models_fitting  # 120 MB at 16 bits
    assert "resnet18" in row16.models_fitting


def test_precision_4bit_fits_everything_that_8_does(precision_rows):
    row4 = next(r for r in precision_rows if r.precision_bits == 4)
    row8 = next(r for r in precision_rows if r.precision_bits == 8)
    assert set(row8.models_fitting) <= set(row4.models_fitting)


def test_precision_benefit_ordering(precision_rows):
    by_bits = {row.precision_bits: row for row in precision_rows}
    assert by_bits[4].edp_benefit >= by_bits[8].edp_benefit \
        >= by_bits[16].edp_benefit


def test_precision_format(precision_rows):
    text = format_precision(precision_rows)
    assert "4-bit" in text and "16-bit" in text
