"""Observability layer (:mod:`repro.obs`): tracing, metrics, exporters.

* spans nest, carry attributes, and aggregate into ``top_spans``;
* with tracing disabled (the default) every hook is a no-op returning the
  falsy :data:`~repro.obs.NULL_SPAN`, so instrumented hot paths cost one
  branch;
* worker processes trace locally and ship their span forests back, so a
  parallel sweep yields one merged trace with per-worker lanes;
* the Chrome-trace / CSV / Prometheus exporters round-trip through their
  own validators.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs import (
    NULL_SPAN,
    MetricsRegistry,
    Span,
    Tracer,
    chrome_trace,
    current_tracer,
    is_enabled,
    prometheus_text,
    registry,
    span,
    spans_csv,
    summarize_spans,
    trace,
    use_registry,
    validate_chrome_trace,
    walk_spans,
)
from repro.runtime.engine import EvaluationEngine


def _square(x):
    return x * x


class TestDisabledIsNoop:
    def test_disabled_by_default(self):
        assert not is_enabled()
        assert current_tracer() is None

    def test_span_outside_trace_is_null(self):
        sp = span("anything", layer="L1")
        assert sp is NULL_SPAN
        assert not sp  # falsy: hot sites guard attr recording with `if sp:`
        with sp:
            sp.set(ignored=1)  # must not raise

    def test_trace_context_restores_disabled_state(self):
        with trace() as tracer:
            assert is_enabled()
            assert current_tracer() is tracer
        assert not is_enabled()
        assert current_tracer() is None


class TestSpanNesting:
    def test_children_nest_under_parent(self):
        with trace() as tracer:
            with tracer.span("outer", kind="sweep"):
                with tracer.span("inner"):
                    pass
                with tracer.span("inner"):
                    pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert outer.attrs["kind"] == "sweep"
        assert [child.name for child in outer.children] == ["inner", "inner"]

    def test_module_level_span_uses_active_tracer(self):
        with trace() as tracer:
            with span("top") as sp:
                assert sp
                sp.set(extra="value")
        assert tracer.roots[0].attrs == {"extra": "value"}

    def test_durations_and_self_time(self):
        with trace() as tracer:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0
        assert outer.self_time == pytest.approx(
            outer.duration - inner.duration)

    def test_walk_is_depth_first(self):
        with trace() as tracer:
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
        names = [sp.name for sp in walk_spans(tracer.roots)]
        assert names == ["a", "b", "c"]

    def test_summarize_groups_by_name(self):
        with trace() as tracer:
            for _ in range(3):
                with tracer.span("hot"):
                    pass
            with tracer.span("cold"):
                pass
        summaries = {s.name: s for s in summarize_spans(tracer.roots)}
        assert summaries["hot"].count == 3
        assert summaries["hot"].mean == pytest.approx(
            summaries["hot"].total / 3)
        assert summaries["cold"].count == 1


class TestWorkerMerge:
    def test_attach_labels_worker_spans(self):
        shipped = (Span(name="pmap.task", start=1.0, duration=0.5),)
        with trace() as tracer:
            tracer.attach(shipped, worker="worker-123")
        assert tracer.roots[0].worker == "worker-123"

    def test_parallel_map_ships_worker_spans(self):
        engine = EvaluationEngine(jobs=2, use_cache=False)
        with trace() as tracer:
            results = engine.map(_square, [(n,) for n in range(8)],
                                 stage="obs.test", dedup=False)
        assert results == [n * n for n in range(8)]
        workers = {sp.worker for sp in walk_spans(tracer.roots)
                   if sp.worker is not None}
        assert workers, "no worker spans were shipped back"
        names = {sp.name for sp in walk_spans(tracer.roots)}
        assert "engine.map" in names
        assert "pmap.task" in names

    def test_serial_map_traces_in_process(self):
        engine = EvaluationEngine(jobs=1, use_cache=False)
        with trace() as tracer:
            engine.map(_square, [(2,), (3,)], stage="obs.serial")
        names = [sp.name for sp in walk_spans(tracer.roots)]
        assert "engine.map" in names
        assert all(sp.worker is None for sp in walk_spans(tracer.roots))


class TestMetrics:
    def test_counter_accumulates_and_rejects_negative(self):
        reg = MetricsRegistry()
        reg.counter("calls", stage="x").inc()
        reg.counter("calls", stage="x").inc(2)
        (sample,) = reg.snapshot()
        assert sample.value == 3
        with pytest.raises(ValueError):
            reg.counter("calls", stage="x").inc(-1)

    def test_labels_key_separate_series(self):
        reg = MetricsRegistry()
        reg.counter("calls", stage="a").inc()
        reg.counter("calls", stage="b").inc(5)
        values = {sample.labels: sample.value for sample in reg.snapshot()}
        assert values[(("stage", "a"),)] == 1
        assert values[(("stage", "b"),)] == 5

    def test_merge_adds_counters_overwrites_gauges(self):
        ours = MetricsRegistry()
        ours.counter("n").inc(3)
        ours.gauge("level").set(1.0)
        theirs = MetricsRegistry()
        theirs.counter("n").inc(3)
        theirs.gauge("level").set(7.0)
        ours.merge(theirs.snapshot())
        values = {(s.name, s.kind): s.value for s in ours.snapshot()}
        assert values[("n", "counter")] == 6
        assert values[("level", "gauge")] == 7.0

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("t", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(50.0)
        (sample,) = reg.snapshot()
        counts = dict(sample.buckets)
        assert counts[1.0] == 1
        assert counts[10.0] == 2
        assert counts[math.inf] == 3
        assert sample.value == pytest.approx(55.5)
        assert sample.count == 3

    def test_use_registry_redirects_context_locally(self):
        scoped = MetricsRegistry()
        with use_registry(scoped):
            registry().counter("inside").inc()
        assert len(scoped) == 1
        assert all(s.name != "inside" for s in registry().snapshot())


class TestExporters:
    def _sample_spans(self):
        with trace() as tracer:
            with tracer.span("outer", stage="s"):
                with tracer.span("inner"):
                    pass
            tracer.attach((Span(name="pmap.task", start=2.0, duration=0.1),),
                          worker="worker-9")
        return tracer.roots

    def test_chrome_trace_is_schema_valid(self):
        data = chrome_trace(self._sample_spans())
        assert validate_chrome_trace(data) == []
        assert json.loads(json.dumps(data)) == data

    def test_chrome_trace_has_worker_lane(self):
        data = chrome_trace(self._sample_spans())
        lanes = {event["args"]["name"] for event in data["traceEvents"]
                 if event["ph"] == "M"}
        assert lanes == {"main", "worker-9"}

    def test_validator_flags_broken_traces(self):
        assert validate_chrome_trace({"traceEvents": []})
        assert validate_chrome_trace([1, 2, 3])
        assert validate_chrome_trace(
            {"traceEvents": [{"ph": "X", "name": "n"}]})

    def test_csv_rows_cover_every_span(self):
        spans = self._sample_spans()
        lines = spans_csv(spans).strip().splitlines()
        header, *rows = lines
        assert header.startswith("name,depth,worker")
        assert len(rows) == sum(1 for _ in walk_spans(spans))

    def test_prometheus_text_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_calls_total", stage="s").inc(2)
        reg.histogram("repro_seconds", buckets=(1.0,)).observe(0.5)
        text = prometheus_text(reg)
        assert '# TYPE repro_calls_total counter' in text
        assert 'repro_calls_total{stage="s"} 2.0' in text
        assert 'repro_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_seconds_count 1' in text
        assert text.endswith("\n")


class TestEngineIntegration:
    def test_report_carries_spans_and_top_spans(self):
        engine = EvaluationEngine(jobs=1, use_cache=True)
        with trace():
            engine.map(_square, [(n,) for n in range(4)], stage="obs.report")
            report = engine.report()
        assert report.spans
        top = report.top_spans(limit=3)
        assert top and top[0].total >= top[-1].total

    def test_report_without_trace_has_no_spans(self):
        engine = EvaluationEngine(jobs=1, use_cache=True)
        engine.map(_square, [(1,)], stage="obs.quiet")
        report = engine.report()
        assert report.spans == ()
        assert report.top_spans() == ()

    def test_engine_metrics_recorded_when_tracing(self):
        engine = EvaluationEngine(jobs=1, use_cache=True)
        scoped = MetricsRegistry()
        with trace(), use_registry(scoped):
            engine.map(_square, [(1,), (1,), (2,)], stage="obs.metrics")
        values = {(s.name, s.labels): s.value for s in scoped.snapshot()}
        key = (("stage", "obs.metrics"),)
        assert values[("repro_engine_calls_total", key)] == 3
        assert values[("repro_engine_dedup_hits_total", key)] == 1
        assert values[("repro_engine_evaluated_total", key)] == 2

    def test_engine_metrics_silent_when_disabled(self):
        engine = EvaluationEngine(jobs=1, use_cache=True)
        scoped = MetricsRegistry()
        with use_registry(scoped):
            engine.map(_square, [(1,)], stage="obs.silent")
        assert len(scoped) == 0
