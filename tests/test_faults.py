"""Tests for the deterministic fault-injection harness (`repro.faults`).

The harness's contract is purity: whether a fault fires for a token is a
function of (seed, rule, token) only, so a chaos test can compute its
exact injection schedule up front.  These tests pin that contract plus
the ledger semantics (`times` budgets that survive process death via the
file ledger), env-var activation, the worker-only guard on crash/hang
sites, and the corruption helper the cache/checkpoint writers call.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError, TransientError
from repro.faults import (
    ENV_VAR,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    corrupt_text,
    in_worker,
    injected_faults,
    install_plan,
    mark_worker,
    maybe_inject,
    perturb_task,
)


@pytest.fixture(autouse=True)
def _clean_fault_state(monkeypatch):
    """Every test starts with no plan, no env var, parent-process mode."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    clear_plan()
    mark_worker(False)
    yield
    clear_plan()
    mark_worker(False)


# --- rule and plan validation ---------------------------------------------


def test_unknown_site_rejected():
    with pytest.raises(ConfigurationError):
        FaultRule(site="task.meltdown", rate=0.5)


def test_rate_out_of_range_rejected():
    with pytest.raises(ConfigurationError):
        FaultRule(site="task.transient", rate=1.5)
    with pytest.raises(ConfigurationError):
        FaultRule(site="task.transient", rate=-0.1)


def test_negative_times_rejected():
    with pytest.raises(ConfigurationError):
        FaultRule(site="task.transient", rate=0.1, times=-1)


def test_plan_round_trips_through_json():
    plan = FaultPlan(seed=7, rules=(
        FaultRule(site="task.crash", rate=0.01),
        FaultRule(site="cache.corrupt", match="abc", times=0),
    ), state_dir="/tmp/ledger")
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_rejects_unknown_keys():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_jsonable({"seed": 1, "surprise": True})
    with pytest.raises(ConfigurationError):
        FaultRule.from_jsonable({"site": "task.crash", "color": "red"})


def test_plan_rejects_invalid_json():
    with pytest.raises(ConfigurationError):
        FaultPlan.from_json("{not json")


# --- pure selection --------------------------------------------------------


def test_selection_is_deterministic_and_seed_dependent():
    tokens = [f"token-{i}" for i in range(2000)]
    rule = FaultRule(site="task.transient", rate=0.05)
    plan_a = FaultPlan(seed=1, rules=(rule,))
    plan_b = FaultPlan(seed=1, rules=(rule,))
    plan_c = FaultPlan(seed=2, rules=(rule,))
    selected_a = {t for t in tokens if plan_a.selects("task.transient", t)}
    selected_b = {t for t in tokens if plan_b.selects("task.transient", t)}
    selected_c = {t for t in tokens if plan_c.selects("task.transient", t)}
    assert selected_a == selected_b
    assert selected_a != selected_c
    # The seeded hash draw tracks the requested rate (5% of 2000 = 100).
    assert 50 <= len(selected_a) <= 160


def test_match_targets_exactly_the_matching_tokens():
    plan = FaultPlan(rules=(FaultRule(site="task.crash", match="poison"),))
    assert plan.selects("task.crash", "the-poison-task")
    assert not plan.selects("task.crash", "a-healthy-task")
    assert not plan.selects("task.transient", "the-poison-task")


def test_zero_rate_never_selects():
    plan = FaultPlan(rules=(FaultRule(site="task.transient", rate=0.0),))
    assert not any(plan.selects("task.transient", f"t{i}")
                   for i in range(100))


# --- firing and ledger -----------------------------------------------------


def test_transient_fires_exactly_times_then_goes_quiet():
    rule = FaultRule(site="task.transient", match="flaky", times=2)
    with injected_faults(FaultPlan(rules=(rule,))) as plan:
        for _ in range(2):
            with pytest.raises(TransientError):
                maybe_inject("task.transient", "flaky-task")
        # Budget spent: the third call is a no-op.
        maybe_inject("task.transient", "flaky-task")
        assert plan.fire_count(rule, "flaky-task") == 2


def test_unlimited_times_keeps_firing_and_recording():
    rule = FaultRule(site="task.transient", match="flaky", times=0)
    with injected_faults(FaultPlan(rules=(rule,))) as plan:
        for _ in range(5):
            with pytest.raises(TransientError):
                maybe_inject("task.transient", "flaky-task")
        assert plan.fire_count(rule, "flaky-task") == 5


def test_file_ledger_survives_a_fresh_plan_instance(tmp_path):
    """`times` memory lives on disk, so it survives a worker crash."""
    rule = FaultRule(site="task.transient", match="flaky", times=1)
    first = FaultPlan(rules=(rule,), state_dir=str(tmp_path))
    with injected_faults(first):
        with pytest.raises(TransientError):
            maybe_inject("task.transient", "flaky-task")
    # A brand-new plan object (as a respawned worker would build from
    # JSON) sees the firing and stays quiet.
    second = FaultPlan.from_json(first.to_json())
    assert second.fire_count(rule, "flaky-task") == 1
    with injected_faults(second):
        maybe_inject("task.transient", "flaky-task")  # no raise
    assert second.claim_count("task.transient", "flaky-task") == 1


def test_worker_only_sites_never_fire_in_the_parent():
    """A crash rule must not take down the parent, nor charge the ledger."""
    rule = FaultRule(site="task.crash", match="", times=1)  # matches all
    with injected_faults(FaultPlan(rules=(rule,))) as plan:
        maybe_inject("task.crash", "any-task")   # would os._exit in a worker
        assert plan.fire_count(rule, "any-task") == 0
        assert not in_worker()


def test_perturb_task_runs_the_transient_site():
    rule = FaultRule(site="task.transient", match="flaky", times=1)
    with injected_faults(FaultPlan(rules=(rule,))):
        with pytest.raises(TransientError):
            perturb_task("flaky-task")
        perturb_task("flaky-task")               # budget spent


# --- activation ------------------------------------------------------------


def test_no_plan_means_no_op():
    assert active_plan() is None
    maybe_inject("task.transient", "anything")
    assert corrupt_text("cache.corrupt", "key", "text") == "text"


def test_env_var_inline_json_activates(monkeypatch):
    plan = FaultPlan(seed=3, rules=(
        FaultRule(site="task.transient", rate=0.5),))
    monkeypatch.setenv(ENV_VAR, plan.to_json())
    assert active_plan() == plan


def test_env_var_at_path_activates(monkeypatch, tmp_path):
    plan = FaultPlan(seed=4, rules=(
        FaultRule(site="cache.corrupt", rate=0.25),))
    path = tmp_path / "plan.json"
    path.write_text(plan.to_json(), encoding="utf-8")
    monkeypatch.setenv(ENV_VAR, f"@{path}")
    assert active_plan() == plan


def test_installed_plan_shadows_the_env(monkeypatch):
    env_plan = FaultPlan(seed=5)
    monkeypatch.setenv(ENV_VAR, env_plan.to_json())
    installed = FaultPlan(seed=6)
    install_plan(installed)
    assert active_plan() == installed
    clear_plan()
    assert active_plan() == env_plan


def test_injected_faults_restores_the_previous_plan():
    outer = FaultPlan(seed=10)
    install_plan(outer)
    with injected_faults(FaultPlan(seed=11)):
        assert active_plan() == FaultPlan(seed=11)
    assert active_plan() == outer


# --- corruption helper -----------------------------------------------------


def test_corrupt_text_breaks_json_deterministically():
    rule = FaultRule(site="cache.corrupt", match="victim", times=0)
    payload = json.dumps({"value": list(range(50))})
    with injected_faults(FaultPlan(seed=1, rules=(rule,))):
        broken = corrupt_text("cache.corrupt", "victim-key", payload)
    assert broken != payload
    with pytest.raises(ValueError):
        json.loads(broken)
    # Same seed, same token, same payload -> identical corruption.
    with injected_faults(FaultPlan(seed=1, rules=(rule,))):
        again = corrupt_text("cache.corrupt", "victim-key", payload)
    assert again == broken


def test_corrupt_text_respects_the_times_budget():
    rule = FaultRule(site="cache.corrupt", match="victim", times=1)
    with injected_faults(FaultPlan(rules=(rule,))):
        first = corrupt_text("cache.corrupt", "victim-key", "{}")
        second = corrupt_text("cache.corrupt", "victim-key", "{}")
    assert first != "{}"
    assert second == "{}"


def test_corrupt_text_leaves_unselected_tokens_alone():
    rule = FaultRule(site="cache.corrupt", match="victim")
    with injected_faults(FaultPlan(rules=(rule,))):
        assert corrupt_text("cache.corrupt", "innocent", "{}") == "{}"
        assert corrupt_text("checkpoint.corrupt", "victim", "{}") == "{}"


def test_every_declared_site_is_accepted():
    for site in FAULT_SITES:
        FaultRule(site=site, rate=0.1)
