"""Fig. 7 experiment: Table II architectures, two evaluators."""

import pytest

from repro.experiments.fig7 import (
    arch_cs_area,
    arch_n_cs,
    format_fig7,
    run_fig7,
)
from repro.arch.table2 import table_ii_architectures


@pytest.fixture(scope="module")
def rows(pdk):
    return run_fig7(pdk)


def test_all_six_architectures_evaluated(rows):
    assert [row.arch.index for row in rows] == [1, 2, 3, 4, 5, 6]


def test_edp_benefits_in_paper_band(rows):
    """Paper: 5.3x-11.5x across the architectures."""
    benefits = [row.mapper_edp for row in rows]
    assert min(benefits) == pytest.approx(5.3, rel=0.15)
    assert max(benefits) == pytest.approx(11.5, rel=0.15)


def test_every_arch_benefits_strongly(rows):
    for row in rows:
        assert row.mapper_edp > 5.0


def test_analytical_within_10pct_of_mapper(rows):
    """The paper's headline Fig. 7 claim."""
    for row in rows:
        assert row.edp_disagreement < 0.10, f"Arch {row.arch.index}"


def test_speedups_bounded_by_n(rows):
    for row in rows:
        assert row.mapper_speedup <= row.n_cs + 1e-9


def test_energy_benefits_near_unity(rows):
    for row in rows:
        assert 0.8 < row.mapper_energy < 1.3


def test_cs_area_varies_across_archs(pdk):
    areas = [arch_cs_area(a, pdk) for a in table_ii_architectures()]
    assert max(areas) > 1.5 * min(areas)


def test_arch3_big_registers_cost_area(pdk):
    archs = {a.index: a for a in table_ii_architectures()}
    assert arch_cs_area(archs[3], pdk) > arch_cs_area(archs[2], pdk)


def test_n_cs_respects_ceiling(pdk):
    from repro.experiments.fig7 import MAX_PARALLEL_CS
    for arch in table_ii_architectures():
        assert 1 <= arch_n_cs(arch, pdk) <= MAX_PARALLEL_CS


def test_format_contains_all_archs(rows):
    text = format_fig7(rows)
    for index in range(1, 7):
        assert f"Arch {index}" in text
    assert "disagreement" in text
