"""Equations 1-8 of the analytical framework, hand-checked."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.core.framework import (
    DesignPoint,
    Workload,
    edp_benefit,
    energy,
    energy_benefit,
    execution_time,
    speedup,
    used_partitions,
)


@pytest.fixture
def base():
    """A clean reference point: P_peak 256 ops/cyc, B 256 bits/cyc."""
    return DesignPoint(
        n_cs=1, peak_ops_per_cycle=256, bandwidth_bits_per_cycle=256,
        memory_energy_per_bit=2e-12, compute_energy_per_op=2e-12,
        cs_idle_energy_per_cycle=1e-12, memory_idle_energy_per_cycle=1e-12)


def test_compute_bound_time_eq1(base):
    """F0/P dominates when D0/B is small."""
    workload = Workload(compute_ops=256_000, data_bits=256)
    assert execution_time(workload, base) == pytest.approx(1000.0)


def test_memory_bound_time_eq1(base):
    workload = Workload(compute_ops=256, data_bits=256_000)
    assert execution_time(workload, base) == pytest.approx(1000.0)


def test_balanced_time_eq1(base):
    workload = Workload(compute_ops=256_0, data_bits=256_0)
    t = execution_time(workload, base)
    assert t == pytest.approx(max(10.0, 10.0))


def test_eq4_compute_scales_with_nmax(base):
    workload = Workload(compute_ops=256_000, data_bits=256)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    assert execution_time(workload, m3d) == pytest.approx(125.0)


def test_eq4_broadcast_transfer_term(base):
    """D0 * N / B: broadcast traffic does not speed up with banking alone."""
    workload = Workload(compute_ops=256, data_bits=256_000)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    assert execution_time(workload, m3d) == pytest.approx(1000.0)


def test_nmax_respects_partition_limit(base):
    workload = Workload(compute_ops=1e6, data_bits=1.0, max_partitions=4)
    m3d = base.with_n_cs(8)
    assert used_partitions(workload, m3d) == 4


def test_speedup_eq5_compute_bound(base):
    workload = Workload(compute_ops=1e6, data_bits=1.0)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    assert speedup(workload, base, m3d) == pytest.approx(8.0)


def test_speedup_capped_by_partitions(base):
    workload = Workload(compute_ops=1e6, data_bits=1.0, max_partitions=4)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    assert speedup(workload, base, m3d) == pytest.approx(4.0)


def test_energy_eq6_components(base):
    """Hand-check Eq. 6 on a memory-bound point."""
    workload = Workload(compute_ops=256, data_bits=256_000)
    t = 1000.0
    compute_time = 1.0
    expected = (2e-12 * 256_000          # alpha * D0
                + 1e-12 * 0.0            # memory never idles
                + 1e-12 * (t - compute_time)  # CS stalls
                + 2e-12 * 256)           # E_C * F0
    assert energy(workload, base) == pytest.approx(expected)


def test_energy_eq7_idle_cs_terms(base):
    """Unused CSs burn idle energy for the whole runtime (Eq. 7)."""
    workload = Workload(compute_ops=256_000, data_bits=256, max_partitions=4)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    t = execution_time(workload, m3d)
    unused_term = (8 - 4) * 1e-12 * t
    assert energy(workload, m3d) >= unused_term


def test_energy_zero_idle_matches_work_only():
    point = DesignPoint(
        n_cs=1, peak_ops_per_cycle=100, bandwidth_bits_per_cycle=100,
        memory_energy_per_bit=1e-12, compute_energy_per_op=1e-12)
    workload = Workload(compute_ops=1000, data_bits=10)
    assert energy(workload, point) == pytest.approx(1e-12 * 10 + 1e-12 * 1000)


def test_energy_benefit_unity_for_same_point(base):
    workload = Workload(compute_ops=1e5, data_bits=1e3)
    assert energy_benefit(workload, base, base) == pytest.approx(1.0)


def test_edp_benefit_eq8_is_product(base):
    workload = Workload(compute_ops=1e6, data_bits=1.0)
    m3d = base.with_n_cs(8).with_bandwidth(8 * 256)
    assert edp_benefit(workload, base, m3d) == pytest.approx(
        speedup(workload, base, m3d) * energy_benefit(workload, base, m3d))


def test_intensity(base):
    workload = Workload(compute_ops=1600, data_bits=100)
    assert workload.intensity == pytest.approx(16.0)


def test_intensity_infinite_without_data():
    workload = Workload(compute_ops=100, data_bits=0)
    assert math.isinf(workload.intensity)


def test_with_bandwidth_copy(base):
    doubled = base.with_bandwidth(512)
    assert doubled.bandwidth_bits_per_cycle == 512
    assert base.bandwidth_bits_per_cycle == 256


def test_invalid_workload_rejected():
    with pytest.raises(ConfigurationError):
        Workload(compute_ops=-1, data_bits=0)


def test_invalid_design_point_rejected():
    with pytest.raises(ConfigurationError):
        DesignPoint(n_cs=0, peak_ops_per_cycle=1,
                    bandwidth_bits_per_cycle=1,
                    memory_energy_per_bit=0, compute_energy_per_op=0)


def test_zero_data_workload_time(base):
    workload = Workload(compute_ops=256, data_bits=0)
    assert execution_time(workload, base) == pytest.approx(1.0)
