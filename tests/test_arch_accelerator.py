"""Chip-level designs: the area model that produces N = 8."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.accelerator import (
    baseline_2d_design,
    case_study_cs,
    derive_parallel_cs_count,
    m3d_design,
    peripheral_area,
)
from repro.units import MEGABYTE, to_mm2


def test_case_study_cs_area_about_42mm2(pdk):
    area = case_study_cs().silicon_area(pdk)
    assert to_mm2(area) == pytest.approx(41.85, rel=0.01)


def test_gamma_cells_in_n8_window(baseline):
    """gamma_cells must land in the window that yields exactly 8 CSs."""
    gamma = baseline.area.gamma_cells
    perif = baseline.area.gamma_perif
    assert 7.0 <= gamma - perif < 8.0


def test_baseline_has_one_cs(baseline):
    assert baseline.n_cs == 1
    assert not baseline.is_m3d


def test_m3d_derives_8_cs(m3d):
    """The paper's headline geometric result: 1 CS -> 8 CSs (Fig. 2)."""
    assert m3d.n_cs == 8
    assert m3d.is_m3d


def test_iso_footprint(baseline, m3d):
    assert m3d.area.footprint == pytest.approx(baseline.area.footprint)


def test_iso_capacity(baseline, m3d):
    assert m3d.rram_capacity_bits == baseline.rram_capacity_bits


def test_m3d_banks_match_cs_count(m3d):
    assert m3d.bank_plan.banks == m3d.n_cs


def test_m3d_bandwidth_8x_baseline(baseline, m3d):
    """64 MB in 8 banks -> 8x total weight bandwidth (Sec. II)."""
    assert m3d.total_weight_bandwidth == 8 * baseline.total_weight_bandwidth


def test_same_frequency(baseline, m3d):
    assert baseline.frequency_hz == m3d.frequency_hz == 20e6


def test_peak_macs_scale_with_cs(baseline, m3d):
    assert m3d.peak_macs_per_cycle == 8 * baseline.peak_macs_per_cycle


def test_si_tier_fits_in_footprint(m3d):
    assert m3d.area.si_tier_used <= m3d.area.footprint


def test_2d_si_tier_exactly_fills_footprint(baseline):
    assert baseline.area.si_tier_used == pytest.approx(baseline.area.footprint)


def test_capacity_sweep_cs_counts(pdk):
    """Fig. 9 calibration points: 12 MB -> 1 CS, 128 MB -> 16 CSs."""
    expected = {12: 1, 16: 2, 32: 4, 64: 8, 128: 16}
    for megabytes, n_cs in expected.items():
        design = m3d_design(pdk, capacity_bits=int(megabytes * MEGABYTE))
        assert design.n_cs == n_cs, f"{megabytes} MB"


def test_derive_parallel_cs_count_formula():
    assert derive_parallel_cs_count(
        cells_area=7.5, peripherals_area=0.5, cs_area=1.0) == 8


def test_derive_parallel_cs_count_floor():
    assert derive_parallel_cs_count(
        cells_area=7.99, peripherals_area=0.0, cs_area=1.0) == 8


def test_derive_parallel_cs_count_minimum_one():
    assert derive_parallel_cs_count(
        cells_area=0.1, peripherals_area=0.5, cs_area=1.0) == 1


def test_derive_with_extra_si():
    assert derive_parallel_cs_count(
        cells_area=7.5, peripherals_area=0.5, cs_area=1.0,
        extra_si_area=2.0) == 10


def test_relaxed_fet_grows_m3d_footprint(pdk, baseline):
    relaxed = m3d_design(pdk, access_width_factor=2.0)
    assert relaxed.area.footprint > baseline.area.footprint


def test_small_relaxation_keeps_iso_footprint(pdk, baseline):
    relaxed = m3d_design(pdk, access_width_factor=1.3)
    assert relaxed.area.footprint == pytest.approx(baseline.area.footprint)


def test_explicit_n_cs_override(pdk):
    design = m3d_design(pdk, n_cs=16)
    assert design.n_cs == 16
    assert design.bank_plan.banks == 16


def test_with_n_cs_updates_compute_area(m3d):
    wider = m3d.with_n_cs(16)
    assert wider.area.compute == pytest.approx(2 * m3d.area.compute)
    assert wider.bank_plan.banks == 16


def test_with_n_cs_keeps_2d_banks(baseline):
    wider = baseline.with_n_cs(4)
    assert wider.bank_plan.banks == 1  # 2D keeps its single channel


def test_cycle_time(baseline):
    assert baseline.cycle_time == pytest.approx(50e-9)


def test_peripheral_area_constant_across_capacity(pdk):
    assert peripheral_area(pdk) > 0


def test_invalid_n_cs_rejected(pdk, baseline):
    with pytest.raises(ConfigurationError):
        baseline.with_n_cs(0)
