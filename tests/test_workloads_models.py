"""Full-network builders: parameter counts must match the literature."""

import pytest

from repro.workloads.layers import ConvLayer, FCLayer
from repro.workloads.models import (
    alexnet,
    available_networks,
    build_network,
    resnet18,
    resnet34,
    resnet50,
    resnet152,
    vgg16,
)


def test_alexnet_parameter_count():
    assert alexnet().total_weights == pytest.approx(62.4e6, rel=0.01)


def test_vgg16_parameter_count():
    assert vgg16().total_weights == pytest.approx(138.3e6, rel=0.01)


def test_resnet18_parameter_count():
    """The paper sizes Fig. 9 around ResNet-18's ~12 M parameters."""
    assert resnet18().total_weights == pytest.approx(11.7e6, rel=0.01)


def test_resnet34_parameter_count():
    assert resnet34().total_weights == pytest.approx(21.8e6, rel=0.01)


def test_resnet50_parameter_count():
    assert resnet50().total_weights == pytest.approx(25.5e6, rel=0.01)


def test_resnet152_parameter_count():
    """The paper sizes its 64 MB RRAM for ResNet-152's ~60 M parameters."""
    assert resnet152().total_weights == pytest.approx(60.0e6, rel=0.01)


def test_resnet18_mac_count():
    assert resnet18().total_macs == pytest.approx(1.8e9, rel=0.05)


def test_vgg16_mac_count():
    assert vgg16().total_macs == pytest.approx(15.5e9, rel=0.05)


def test_resnet18_table1_layer_names():
    net = resnet18()
    for name in ("CONV1", "L1.0 CONV1", "L2.0 DS", "L2.0 CONV1",
                 "L3.0 CONV2", "L4.1 CONV2"):
        assert net.layer(name) is not None


def test_resnet18_stage_shapes():
    net = resnet18()
    l2 = net.layer("L2.0 CONV2")
    assert isinstance(l2, ConvLayer)
    assert l2.out_channels == 128
    assert l2.out_size == 28
    l4 = net.layer("L4.1 CONV2")
    assert l4.out_channels == 512
    assert l4.out_size == 7


def test_resnet18_downsample_is_1x1_stride2():
    ds = resnet18().layer("L2.0 DS")
    assert ds.kernel == 1
    assert ds.stride == 2
    assert ds.in_channels == 64
    assert ds.out_channels == 128


def test_resnet50_bottleneck_structure():
    net = resnet50()
    conv1 = net.layer("L1.0 CONV1")
    conv3 = net.layer("L1.0 CONV3")
    assert conv1.kernel == 1
    assert conv3.out_channels == 256  # 4x expansion


def test_resnet152_depth_exceeds_resnet50():
    assert len(resnet152().layers) > len(resnet50().layers)


def test_vgg16_has_13_convs():
    convs = [l for l in vgg16().layers if isinstance(l, ConvLayer)]
    assert len(convs) == 13


def test_vgg16_compact_fits_64mb():
    from repro.units import MEGABYTE
    compact = vgg16(compact_classifier=True)
    assert compact.weight_bits(8) <= 64 * MEGABYTE
    assert compact.name == "vgg16c"


def test_vgg16_full_does_not_fit_64mb():
    from repro.units import MEGABYTE
    assert vgg16().weight_bits(8) > 64 * MEGABYTE


def test_vgg16_compact_preserves_conv_trunk():
    full_convs = [l for l in vgg16().layers if isinstance(l, ConvLayer)]
    compact_convs = [l for l in vgg16(True).layers if isinstance(l, ConvLayer)]
    assert [c.weights for c in full_convs] == [c.weights for c in compact_convs]


def test_build_network_round_trip():
    for name in available_networks():
        net = build_network(name)
        assert net.total_weights > 0
        assert net.total_macs > 0


def test_build_network_unknown_raises():
    with pytest.raises(KeyError):
        build_network("lenet")


def test_layer_lookup_unknown_raises():
    with pytest.raises(KeyError):
        resnet18().layer("L9.9 CONV9")


def test_weighted_layers_excludes_pools():
    for layer in alexnet().weighted_layers():
        assert layer.weights > 0


def test_all_networks_end_with_classifier():
    for name in available_networks():
        last = build_network(name).layers[-1]
        assert isinstance(last, FCLayer)
        assert last.out_features == 1000
