"""Property-based tests on the mapper cost model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.table2 import table_ii_architectures
from repro.mapper.cost import CostModel, LoopOrder, Tiling
from repro.mapper.loopnest import LoopNest, OperandKind

_ARCHS = table_ii_architectures()
_MODELS = {arch.index: CostModel(arch) for arch in _ARCHS}

nests = st.builds(
    LoopNest,
    k=st.integers(min_value=1, max_value=512),
    c=st.integers(min_value=1, max_value=512),
    ox=st.integers(min_value=1, max_value=56),
    oy=st.integers(min_value=1, max_value=56),
    r=st.sampled_from([1, 3, 5]),
    s=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
)


def _tiling(nest: LoopNest, order: LoopOrder) -> Tiling:
    return Tiling(order=order, tk=min(32, nest.k), tc=min(32, nest.c),
                  toy=min(8, nest.oy))


@given(nests, st.sampled_from([1, 2, 3, 4, 5, 6]))
@settings(max_examples=80)
def test_utilization_in_unit_interval(nest, arch_index):
    util = _MODELS[arch_index].utilization(nest)
    assert 0.0 < util <= 1.0


@given(nests, st.sampled_from([1, 2, 3, 4, 5, 6]),
       st.sampled_from(list(LoopOrder)))
@settings(max_examples=80)
def test_traffic_at_least_operand_sizes(nest, arch_index, order):
    """Every operand must cross its home boundary at least once."""
    model = _MODELS[arch_index]
    traffic = model.boundary_traffic(nest, _tiling(nest, order))
    assert traffic["rram_weight_reads"] >= nest.operand_size(
        OperandKind.WEIGHT)
    assert traffic["global_input_reads"] >= nest.operand_size(
        OperandKind.INPUT) * (1 - 1e-12) or nest.stride > 1
    assert traffic["global_output_writes"] >= nest.operand_size(
        OperandKind.OUTPUT)


@given(nests, st.sampled_from([1, 2, 3, 4, 5, 6]))
@settings(max_examples=60)
def test_output_outer_never_spills_outputs(nest, arch_index):
    model = _MODELS[arch_index]
    traffic = model.boundary_traffic(
        nest, _tiling(nest, LoopOrder.OUTPUT_OUTER))
    assert traffic["global_output_reads"] == 0
    assert traffic["global_output_writes"] == nest.operand_size(
        OperandKind.OUTPUT)


@given(nests, st.sampled_from([1, 2, 3, 4, 5, 6]),
       st.sampled_from(list(LoopOrder)))
@settings(max_examples=60)
def test_evaluate_cost_positive_and_compute_bounded(nest, arch_index, order):
    model = _MODELS[arch_index]
    cost = model.evaluate(nest, _tiling(nest, order),
                          rram_channel_bits=256)
    assert cost.dynamic_energy > 0
    assert cost.cycles * 1024 * cost.utilization >= nest.macs * (1 - 1e-9)


@given(nests)
@settings(max_examples=60)
def test_bigger_toy_never_increases_weight_traffic(nest):
    """Output-outer weight re-reads shrink as the row tile grows."""
    model = _MODELS[1]
    small = Tiling(LoopOrder.OUTPUT_OUTER, tk=min(16, nest.k),
                   tc=min(16, nest.c), toy=1)
    large = Tiling(LoopOrder.OUTPUT_OUTER, tk=min(16, nest.k),
                   tc=min(16, nest.c), toy=nest.oy)
    t_small = model.boundary_traffic(nest, small)["rram_weight_reads"]
    t_large = model.boundary_traffic(nest, large)["rram_weight_reads"]
    assert t_large <= t_small
