"""RRAM bit-cell, array, and bank-plan geometry."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.devices import beol_cnfet, silicon_nmos
from repro.tech.ilv import ILVModel
from repro.tech.node import NODE_130NM
from repro.tech.rram import (
    RRAMArray,
    RRAMBankPlan,
    cell_for_access_fet,
    default_rram_cell,
)
from repro.units import MEGABYTE


@pytest.fixture
def cell():
    return default_rram_cell(NODE_130NM)


def test_default_cell_area_is_36f2(cell):
    assert cell.area(None) == pytest.approx(36 * NODE_130NM.f2)


def test_cell_area_scales_with_access_width(cell):
    relaxed = cell.with_access_width_factor(1.5)
    assert relaxed.area(None) == pytest.approx(1.5 * cell.area(None))


def test_access_width_below_one_rejected(cell):
    with pytest.raises(ConfigurationError):
        cell.with_access_width_factor(0.9)


def test_default_cell_is_fet_limited_at_default_ilv(cell):
    from repro.tech.ilv import default_ilv
    assert cell.area(default_ilv()) == pytest.approx(cell.area(None))


def test_cell_becomes_via_limited_at_coarse_pitch(cell):
    coarse = ILVModel(pitch=2e-6)
    via_limited = cell.vias_per_cell * coarse.pitch ** 2
    assert cell.area(coarse) == pytest.approx(via_limited)
    assert cell.area(coarse) > cell.area(None)


def test_via_limited_area_quadratic_in_pitch(cell):
    a1 = cell.area(ILVModel(pitch=2e-6))
    a2 = cell.area(ILVModel(pitch=4e-6))
    assert a2 == pytest.approx(4.0 * a1)


def test_cell_for_weak_access_fet_grows():
    reference = silicon_nmos(NODE_130NM)
    weak = beol_cnfet(NODE_130NM, relative_drive=0.5)
    grown = cell_for_access_fet(NODE_130NM, reference, weak)
    assert grown.access_width_factor == pytest.approx(2.0)


def test_cell_for_strong_access_fet_clamps_to_one():
    reference = silicon_nmos(NODE_130NM)
    strong = beol_cnfet(NODE_130NM, relative_drive=2.0)
    assert cell_for_access_fet(
        NODE_130NM, reference, strong).access_width_factor == 1.0


def test_array_area_is_bits_times_cell(cell):
    array = RRAMArray(cell=cell, capacity_bits=1000)
    assert array.area == pytest.approx(1000 * cell.area(None))


def test_array_64mb_area_about_327_mm2(cell):
    array = RRAMArray(cell=cell, capacity_bits=64 * MEGABYTE)
    assert array.area == pytest.approx(326.6e-6, rel=0.01)


def test_array_read_energy(cell):
    array = RRAMArray(cell=cell, capacity_bits=1024)
    assert array.read_energy(100) == pytest.approx(
        100 * cell.read_energy_per_bit)


def test_array_write_energy_exceeds_read(cell):
    array = RRAMArray(cell=cell, capacity_bits=1024)
    assert array.write_energy(10) > array.read_energy(10)


def test_array_rejects_zero_capacity(cell):
    with pytest.raises(ConfigurationError):
        RRAMArray(cell=cell, capacity_bits=0)


def test_bank_plan_bandwidth_scales_with_banks(cell):
    array = RRAMArray(cell=cell, capacity_bits=64 * MEGABYTE)
    plan = RRAMBankPlan(array=array, banks=8, bank_width_bits=256)
    assert plan.total_bandwidth_bits_per_cycle == 8 * 256


def test_bank_plan_capacity_partition(cell):
    array = RRAMArray(cell=cell, capacity_bits=64 * MEGABYTE)
    plan = RRAMBankPlan(array=array, banks=8, bank_width_bits=256)
    assert plan.bank_capacity_bits == 64 * MEGABYTE // 8


def test_bank_plan_ceiling_partition_for_odd_banks(cell):
    array = RRAMArray(cell=cell, capacity_bits=100)
    plan = RRAMBankPlan(array=array, banks=3, bank_width_bits=8)
    assert plan.bank_capacity_bits == 34


def test_rebanked_preserves_array(cell):
    array = RRAMArray(cell=cell, capacity_bits=64 * MEGABYTE)
    plan = RRAMBankPlan(array=array, banks=1, bank_width_bits=256)
    rebanked = plan.rebanked(8)
    assert rebanked.banks == 8
    assert rebanked.array is array


def test_bank_plan_rejects_zero_banks(cell):
    array = RRAMArray(cell=cell, capacity_bits=1024)
    with pytest.raises(ConfigurationError):
        RRAMBankPlan(array=array, banks=0, bank_width_bits=256)
