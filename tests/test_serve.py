"""Tests for the /v1 evaluation server (`repro serve`).

Each test boots a real :class:`~repro.serve.ReproServer` on an ephemeral
port inside one event loop and talks to it over actual sockets through
the bundled :class:`~repro.serve.ServeClient`, so the full wire protocol
— HTTP parsing, chunked NDJSON streaming, error envelopes — is what is
under test, not handler internals.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable

import pytest

from repro.runtime.engine import EvaluationEngine
from repro.serve import ReproServer, ServeClient, ServeError, ServerConfig
from repro.spec import DesignSpec, evaluate_spec

SPEC = {"arch": {}, "tech": {}, "workload": {"network": "resnet18"}}
SWEEP = {"base": SPEC, "grid": {"tech.delta": [1.0, 1.5, 2.0]}}


def serve_test(test: Callable[[ReproServer, ServeClient], Awaitable[Any]],
               config: ServerConfig | None = None,
               engine: EvaluationEngine | None = None) -> Any:
    """Run ``test(server, client)`` against a live server on port 0."""

    async def main() -> Any:
        server = ReproServer(
            config if config is not None else ServerConfig(port=0),
            engine=engine if engine is not None else EvaluationEngine())
        host, port = await server.start()
        try:
            return await test(server, ServeClient(host, port))
        finally:
            await server.stop()

    return asyncio.run(main())


# --- basic routes ---------------------------------------------------------


def test_health_endpoint():
    async def check(server, client):
        payload = await client.health()
        assert payload["status"] == "ok"
        assert payload["api"] == "v1"
        assert payload["pending"] == 0

    serve_test(check)


def test_eval_matches_library_evaluation():
    async def check(server, client):
        payload = await client.evaluate(SPEC)
        result = payload["result"]
        expected = evaluate_spec(DesignSpec.from_jsonable(SPEC))
        assert result["speedup"] == pytest.approx(expected.speedup)
        assert result["edp_benefit"] == pytest.approx(expected.edp_benefit)
        assert result["fingerprint"] == expected.spec.fingerprint()
        assert payload["cached"] is False
        assert payload["coalesced"] is False

    serve_test(check)


def test_eval_reports_cached_on_repeat():
    async def check(server, client):
        first = await client.evaluate(SPEC)
        second = await client.evaluate(SPEC)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]

    serve_test(check)


def test_wrapped_spec_body_accepted():
    async def check(server, client):
        bare = await client.evaluate(SPEC)
        wrapped = await client.evaluate({"spec": SPEC})
        assert wrapped["result"] == bare["result"]

    serve_test(check)


def test_unknown_route_404_envelope():
    async def check(server, client):
        status, _headers, body = await client._request("GET", "/nope")
        assert status == 404
        assert json.loads(body)["error"]["type"] == "not_found"

    serve_test(check)


def test_wrong_method_405_envelope():
    async def check(server, client):
        status, headers, body = await client._request("DELETE", "/v1/eval")
        assert status == 405
        assert json.loads(body)["error"]["type"] == "method_not_allowed"
        assert "POST" in headers.get("allow", "")

    serve_test(check)


# --- error envelope: malformed input never becomes a 500 ------------------


def test_malformed_json_yields_400_envelope_not_500():
    async def check(server, client):
        # _request can't send raw garbage; drive the socket directly.
        reader, writer = await asyncio.open_connection(client.host,
                                                       client.port)
        garbage = b"{not json"
        writer.write(
            (f"POST /v1/eval HTTP/1.1\r\nHost: x\r\n"
             f"Content-Length: {len(garbage)}\r\n"
             f"Connection: close\r\n\r\n").encode() + garbage)
        await writer.drain()
        raw = await reader.read()
        writer.close()
        status_line, _, rest = raw.partition(b"\r\n")
        assert b"400" in status_line
        envelope = json.loads(rest.partition(b"\r\n\r\n")[2])
        assert envelope["error"]["type"] == "configuration_error"
        assert "invalid JSON body" in envelope["error"]["message"]

    serve_test(check)


def test_invalid_spec_yields_422_envelope():
    async def check(server, client):
        with pytest.raises(ServeError) as info:
            await client.evaluate({"bogus": 1})
        assert info.value.status == 422
        assert info.value.error_type == "configuration_error"

    serve_test(check)


def test_invalid_sweep_option_yields_400():
    async def check(server, client):
        with pytest.raises(ServeError) as info:
            await client.sweep(SWEEP, options={"chunk_size": "nope"})
        assert info.value.status == 400

    serve_test(check)


def test_non_object_body_yields_400():
    async def check(server, client):
        status, _headers, body = await client._request(
            "POST", "/v1/eval", [1, 2, 3])
        assert status == 400
        assert "JSON object" in json.loads(body)["error"]["message"]

    serve_test(check)


# --- coalescing -----------------------------------------------------------


def test_concurrent_identical_specs_evaluate_exactly_once():
    engine = EvaluationEngine()

    async def check(server, client):
        results = await asyncio.gather(
            *(client.evaluate(SPEC) for _ in range(24)))
        stage = engine.report().stage("serve.eval")
        # The acceptance criterion: N identical in-flight specs, ONE
        # engine evaluation.  Late arrivals (after the owner finished)
        # are cache hits, never re-evaluations.
        assert stage.evaluated == 1
        coalesced = sum(1 for r in results if r["coalesced"])
        assert coalesced == server.stats.coalesced
        assert coalesced + stage.calls == 24
        fingerprints = {r["result"]["fingerprint"] for r in results}
        assert len(fingerprints) == 1

    serve_test(check, engine=engine)


def test_distinct_specs_do_not_coalesce():
    engine = EvaluationEngine()

    async def check(server, client):
        specs = [dict(SPEC, tech={"delta": delta})
                 for delta in (1.0, 1.5, 2.0)]
        await asyncio.gather(*(client.evaluate(s) for s in specs))
        assert engine.report().stage("serve.eval").evaluated == 3

    serve_test(check, engine=engine)


# --- sweep streaming ------------------------------------------------------


def test_sweep_streams_ndjson_events_in_order():
    async def check(server, client):
        events = await client.sweep(SWEEP, options={"chunk_size": 2})
        kinds = [event["event"] for event in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert kinds.count("evaluation") == 3
        assert kinds.count("chunk") == 2
        end = events[-1]
        assert end["points"] == 3
        assert end["evaluated"] == 3
        start = events[0]
        assert start["points"] == 3
        assert start["batch"] is True

    serve_test(check)


def test_sweep_matches_library_results():
    async def check(server, client):
        events = await client.sweep(SWEEP)
        served = {event["fingerprint"]: event["speedup"]
                  for event in events if event["event"] == "evaluation"}
        from repro.spec import SweepSpec, evaluate_sweep
        expected = evaluate_sweep(SweepSpec.from_jsonable(SWEEP),
                                  engine=EvaluationEngine())
        for evaluation in expected:
            fingerprint = evaluation.spec.fingerprint()
            assert served[fingerprint] == pytest.approx(evaluation.speedup)

    serve_test(check)


def test_bare_design_spec_is_one_point_sweep():
    async def check(server, client):
        status, _headers, body = await client._request(
            "POST", "/v1/sweep", SPEC)
        assert status == 200

    serve_test(check)


def test_sweep_warms_the_eval_cache():
    engine = EvaluationEngine()

    async def check(server, client):
        await client.sweep(SWEEP)
        payload = await client.evaluate(
            {**SPEC, "tech": {"delta": 1.5}})
        assert payload["cached"] is True

    serve_test(check, engine=engine)


def test_client_disconnect_cancels_sweep_without_poisoning_cache():
    engine = EvaluationEngine()
    big_sweep = {"base": SPEC,
                 "grid": {"tech.delta": [round(1.0 + i * 0.05, 2)
                                         for i in range(40)]}}

    async def check(server, client):
        stream = client.sweep_events(big_sweep, options={"chunk_size": 1})
        async for event in stream:
            if event["event"] == "evaluation":
                break                     # hang up mid-stream
        await stream.aclose()
        # The server notices between chunk flushes and stops the worker.
        for _ in range(200):
            if server.stats.streams_cancelled and server._pending == 0:
                break
            await asyncio.sleep(0.05)
        assert server.stats.streams_cancelled == 1
        assert server._pending == 0
        partial = engine.report().stage("sweep.evaluate").evaluated
        assert partial < 40               # it really was cancelled early
        # The shared cache is not poisoned: the same sweep re-runs to
        # completion and every point matches a fresh engine's results.
        events = await client.sweep(big_sweep, options={"chunk_size": 8})
        end = events[-1]
        assert end["event"] == "end"
        assert end["points"] == 40
        served = {e["fingerprint"]: e["edp_benefit"] for e in events
                  if e["event"] == "evaluation"}
        from repro.spec import SweepSpec, evaluate_sweep
        expected = evaluate_sweep(SweepSpec.from_jsonable(big_sweep),
                                  engine=EvaluationEngine())
        assert len(served) == 40
        for evaluation in expected:
            assert served[evaluation.spec.fingerprint()] == pytest.approx(
                evaluation.edp_benefit)

    serve_test(check, engine=engine)


# --- backpressure and quotas ----------------------------------------------


def test_overload_yields_429_with_retry_after():
    async def check(server, client):
        with pytest.raises(ServeError) as info:
            await client.evaluate(SPEC)
        assert info.value.status == 429
        assert info.value.error_type == "overloaded"
        assert info.value.retry_after is not None
        assert server.stats.rejected_overload == 1

    serve_test(check, config=ServerConfig(port=0, max_pending=0))


def test_sweep_overload_yields_429():
    async def check(server, client):
        with pytest.raises(ServeError) as info:
            await client.sweep(SWEEP)
        assert info.value.status == 429

    serve_test(check, config=ServerConfig(port=0, max_pending=0))


def test_quota_yields_429_rate_limited():
    async def check(server, client):
        limited = ServeClient(client.host, client.port, client_id="alice")
        await limited.evaluate(SPEC)      # burst of 1: first is free
        with pytest.raises(ServeError) as info:
            await limited.evaluate(SPEC)
        assert info.value.status == 429
        assert info.value.error_type == "rate_limited"
        assert info.value.retry_after > 0
        # A different client has its own bucket.
        other = ServeClient(client.host, client.port, client_id="bob")
        payload = await other.evaluate(SPEC)
        assert payload["result"]["speedup"] > 1
        assert server.stats.rejected_quota == 1

    serve_test(check, config=ServerConfig(port=0, quota_rate=0.001,
                                          quota_burst=1))


def test_quota_does_not_gate_reads():
    async def check(server, client):
        limited = ServeClient(client.host, client.port, client_id="alice")
        await limited.evaluate(SPEC)
        for _ in range(5):                # GETs bypass the token bucket
            assert (await limited.health())["status"] == "ok"

    serve_test(check, config=ServerConfig(port=0, quota_rate=0.001,
                                          quota_burst=1))


# --- observability endpoints ----------------------------------------------


def test_metrics_endpoint_scrapes_prometheus_text():
    async def check(server, client):
        await client.evaluate(SPEC)
        text = await client.metrics_text()
        assert "repro_serve_requests_total" in text
        assert "repro_serve_request_seconds" in text

    serve_test(check)


def test_cache_endpoint_reports_engine_and_serve_counters():
    async def check(server, client):
        await client.evaluate(SPEC)
        await client.evaluate(SPEC)
        payload = await client.cache()
        assert payload["entries"] >= 1
        assert payload["cache"]["stores"] >= 1
        assert payload["stages"]["serve.eval"]["evaluated"] == 1
        assert payload["serve"]["requests"] >= 3

    serve_test(check)


# --- protocol edges -------------------------------------------------------


def test_oversized_body_yields_413():
    async def check(server, client):
        status, _headers, body = await client._request(
            "POST", "/v1/eval", {"pad": "x" * 4096})
        assert status == 413

    serve_test(check, config=ServerConfig(port=0, max_body_bytes=1024))


def test_keep_alive_serves_multiple_requests_per_connection():
    async def check(server, client):
        reader, writer = await asyncio.open_connection(client.host,
                                                       client.port)
        for _ in range(3):
            writer.write(b"GET /v1/health HTTP/1.1\r\nHost: x\r\n\r\n")
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in head
            length = int(
                [line.split(b":")[1] for line in head.split(b"\r\n")
                 if line.lower().startswith(b"content-length")][0])
            await reader.readexactly(length)
        writer.close()

    serve_test(check)


# --- fault tolerance: circuit breaker, deadlines, graceful drain ----------


class _FlakyEngine(EvaluationEngine):
    """Fails the first ``failures`` engine calls, then behaves normally."""

    def __init__(self, failures: int,
                 error: type[Exception] = RuntimeError) -> None:
        super().__init__()
        self.remaining = failures
        self.error = error

    def map(self, *args, **kwargs):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.error("engine sick")
        return super().map(*args, **kwargs)


class _SlowEngine(EvaluationEngine):
    """Sleeps before every engine call (exercises deadlines and drain)."""

    def __init__(self, delay: float) -> None:
        super().__init__()
        self.delay = delay

    def map(self, *args, **kwargs):
        import time as _time

        _time.sleep(self.delay)
        return super().map(*args, **kwargs)


def test_breaker_opens_after_consecutive_engine_failures():
    async def check(server, client):
        for _ in range(2):
            with pytest.raises(ServeError) as excinfo:
                await client.evaluate(SPEC)
            assert excinfo.value.status == 500
        # Threshold reached: the circuit is open, work is refused fast.
        with pytest.raises(ServeError) as excinfo:
            await client.evaluate(SPEC)
        assert excinfo.value.status == 503
        assert excinfo.value.error_type == "circuit_open"
        assert excinfo.value.retry_after is not None
        assert server.stats.rejected_breaker == 1
        assert (await client.health())["breaker"] == "open"

    serve_test(check,
               config=ServerConfig(port=0, breaker_threshold=2,
                                   breaker_reset_seconds=60.0),
               engine=_FlakyEngine(failures=10))


def test_breaker_half_open_probe_closes_on_success():
    async def check(server, client):
        with pytest.raises(ServeError) as excinfo:
            await client.evaluate(SPEC)
        assert excinfo.value.status == 500
        with pytest.raises(ServeError) as excinfo:
            await client.evaluate(SPEC)
        assert excinfo.value.status == 503
        await asyncio.sleep(0.12)            # past the cooldown
        # The engine has recovered: the half-open probe succeeds and
        # closes the circuit for everyone after it.
        payload = await client.evaluate(SPEC)
        assert payload["result"]["speedup"] > 0
        assert (await client.health())["breaker"] == "closed"
        payload = await client.evaluate(SPEC)
        assert payload["cached"] is True

    serve_test(check,
               config=ServerConfig(port=0, breaker_threshold=1,
                                   breaker_reset_seconds=0.05),
               engine=_FlakyEngine(failures=1))


def test_repro_errors_never_trip_the_breaker():
    from repro.errors import ConfigurationError

    async def check(server, client):
        for _ in range(3):
            with pytest.raises(ServeError) as excinfo:
                await client.evaluate(SPEC)
            assert excinfo.value.status != 503
        assert server.stats.rejected_breaker == 0
        assert (await client.health())["breaker"] == "closed"

    serve_test(check,
               config=ServerConfig(port=0, breaker_threshold=1),
               engine=_FlakyEngine(failures=10, error=ConfigurationError))


def test_request_deadline_yields_504():
    async def check(server, client):
        with pytest.raises(ServeError) as excinfo:
            await client.evaluate(SPEC)
        assert excinfo.value.status == 504
        assert excinfo.value.error_type == "deadline_exceeded"
        assert server.stats.deadline_exceeded == 1

    serve_test(check,
               config=ServerConfig(port=0, request_timeout=0.05),
               engine=_SlowEngine(delay=0.5))


def test_drain_waits_for_inflight_work_then_refuses_new_posts():
    async def check(server, client):
        inflight = asyncio.ensure_future(client.evaluate(SPEC))
        await asyncio.sleep(0.05)            # the eval is on the thread
        drained = await server.drain(timeout=5.0)
        assert drained is True               # ...and was allowed to finish
        payload = await inflight
        assert payload["result"]["speedup"] > 0
        denied = server._check_draining()
        assert denied is not None and denied.status == 503
        assert (await _health_direct(server)) == "closed-port"

    async def _health_direct(server):
        try:
            reader, writer = await asyncio.open_connection(
                server.config.host, server.config.port)
        except OSError:
            return "closed-port"
        writer.close()
        return "still-open"

    serve_test(check, engine=_SlowEngine(delay=0.2))


def test_sigterm_drains_and_exits_cleanly(tmp_path):
    """End-to-end: `repro serve` under SIGTERM drains and exits 0."""
    import os
    import signal
    import subprocess
    import sys
    import time

    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--drain-seconds", "5"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, env=env,
        text=True)
    try:
        line = process.stdout.readline()
        assert "listening on" in line
        process.send_signal(signal.SIGTERM)
        output = process.communicate(timeout=15)[0]
    except Exception:
        process.kill()
        raise
    assert process.returncode == 0
    assert "draining" in output
    assert "drained cleanly" in output
