"""Snapshot of the declared public API surface.

``repro.__all__`` is the semantic-versioning contract: the server's wire
schema re-exposes these same operations, and downstream code imports
them by name.  This test pins the exact surface so any accidental
rename, removal, or addition fails CI and forces a deliberate decision
(update the snapshot here *and* the docs, or revert the break).
"""

from __future__ import annotations

import inspect

import pytest

import repro

#: The frozen public surface.  Additions are API decisions: update this
#: set, README, and DESIGN.md together.  Removals are breaking changes.
PUBLIC_API = frozenset({
    # errors + failure taxonomy
    "ReproError", "ConfigurationError", "ModelError", "FloorplanError",
    "MappingError", "TransientError", "PermanentError", "PoisonTaskError",
    "EvaluationFailure", "error_envelope",
    # fault injection + retry policy
    "FaultPlan", "FaultRule", "injected_faults", "RetryPolicy",
    # technology + architecture + workloads
    "foundry_m3d_pdk", "baseline_2d_design", "m3d_design", "case_study_cs",
    "alexnet", "vgg16", "resnet18", "resnet34", "resnet50", "resnet152",
    "build_network",
    # analytical core
    "simulate", "compare_designs", "Workload", "DesignPoint",
    "execution_time", "energy", "speedup", "edp_benefit", "analyze_network",
    "run_flow",
    # staged physical flow
    "FlowOutcome", "run_staged_flow", "run_staged_flows",
    # runtime
    "EvaluationEngine", "ResultCache", "configure", "default_engine",
    "pmap", "stable_key",
    # declarative specs
    "DesignSpec", "FlowSpec", "SweepSpec", "evaluate_spec", "evaluate_specs",
    "evaluate_sweep", "load_design_spec", "load_sweep_spec",
    # streaming sweeps
    "run_streaming_sweep", "stream_sweep",
    # serving
    "ReproServer", "ServerConfig", "ServeClient", "ServeError", "serve",
    # metadata
    "__version__",
})


def test_public_surface_matches_snapshot():
    assert frozenset(repro.__all__) == PUBLIC_API, (
        "public API surface changed; if intentional, update PUBLIC_API in "
        "tests/test_public_api.py (and README/DESIGN.md)")


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_every_export_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.{name} does not resolve"


def test_serve_entry_points_are_complete():
    """The serve subpackage exposes server, client, and blocking entry."""
    assert callable(repro.ReproServer)
    assert callable(repro.ServerConfig)
    assert callable(repro.ServeClient)
    assert callable(repro.serve.serve)
    assert repro.serve.API_VERSION == "v1"


def test_evaluation_entry_points_share_signature_contract():
    """Spec evaluation entry points all accept an explicit engine."""
    for fn in (repro.evaluate_specs, repro.evaluate_sweep,
               repro.run_streaming_sweep):
        assert "engine" in inspect.signature(fn).parameters


def test_version_is_semver():
    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_error_envelope_shape_is_frozen():
    """The /v1 error envelope: exactly {error: {type, message, path}}."""
    envelope = repro.error_envelope(
        repro.ConfigurationError("bad value", path="tech.delta"))
    assert set(envelope) == {"error"}
    assert set(envelope["error"]) == {"type", "message", "path"}
    assert envelope["error"]["type"] == "configuration_error"
    assert envelope["error"]["path"] == "tech.delta"


def test_public_exceptions_form_one_hierarchy():
    for name in ("ConfigurationError", "ModelError", "FloorplanError",
                 "MappingError", "TransientError", "PermanentError",
                 "PoisonTaskError"):
        assert issubclass(getattr(repro, name), repro.ReproError)
    with pytest.raises(repro.ReproError):
        raise repro.ConfigurationError("x")
