"""Obs. 5 / Obs. 6 design-space sweeps (Figs. 8 and 9)."""

import pytest

from repro.core.insights import (
    m3d_point,
    obs5_compute_bound_ratio,
    obs5_memory_bound_ratio,
    reference_design_point,
    sweep_bandwidth_vs_cs,
    sweep_rram_capacity,
)
from repro.units import MEGABYTE


def test_reference_point_is_case_study(pdk):
    point = reference_design_point(pdk)
    assert point.n_cs == 1
    assert point.peak_ops_per_cycle == 256
    assert point.bandwidth_bits_per_cycle == 256


def test_m3d_point_scales_total_bandwidth():
    base = reference_design_point()
    point = m3d_point(base, n_cs=8, per_cs_bandwidth_factor=1.0)
    assert point.bandwidth_bits_per_cycle == pytest.approx(8 * 256)


def test_obs5_compute_bound_doubling_near_2():
    """Paper: ~2.1x better EDP from 2x CSs at 16 ops/bit."""
    ratio = obs5_compute_bound_ratio()
    assert ratio == pytest.approx(2.1, rel=0.10)


def test_obs5_memory_bound_rebalance_near_2():
    """Paper: ~2.1x better EDP from 2x per-CS bandwidth at half the CSs."""
    ratio = obs5_memory_bound_ratio()
    assert ratio == pytest.approx(2.1, rel=0.10)


def test_compute_bound_grid_favors_cs_count():
    grid = sweep_bandwidth_vs_cs(16.0)
    at = {(p.n_cs, p.bandwidth_factor): p.edp_benefit for p in grid}
    assert at[(8, 1.0)] > at[(4, 1.0)] > at[(2, 1.0)]
    # Extra bandwidth alone buys nothing when compute-bound.
    assert at[(8, 2.0)] == pytest.approx(at[(8, 1.0)], rel=0.01)


def test_memory_bound_grid_favors_bandwidth():
    grid = sweep_bandwidth_vs_cs(1.0 / 16.0)
    at = {(p.n_cs, p.bandwidth_factor): p.edp_benefit for p in grid}
    assert at[(1, 2.0)] > at[(1, 1.0)]
    # Extra CSs alone buy nothing (slightly negative via idle energy).
    assert at[(8, 1.0)] <= at[(1, 1.0)]


def test_memory_bound_low_bandwidth_hurts():
    grid = sweep_bandwidth_vs_cs(1.0 / 16.0)
    at = {(p.n_cs, p.bandwidth_factor): p.edp_benefit for p in grid}
    assert at[(1, 0.5)] < 1.0


def test_grid_covers_requested_points():
    grid = sweep_bandwidth_vs_cs(16.0, n_cs_values=(1, 2),
                                 bandwidth_factors=(1.0, 2.0))
    assert len(grid) == 4


def test_capacity_sweep_matches_fig9(pdk):
    """Fig. 9: 1x at 12 MB -> ~5.7x at 64 MB -> ~6.8x at 128 MB."""
    points = sweep_rram_capacity(pdk=pdk)
    by_mb = {round(p.capacity_megabytes): p for p in points}
    assert by_mb[12].n_cs == 1
    assert by_mb[12].edp_benefit == pytest.approx(1.0, abs=0.01)
    assert by_mb[64].edp_benefit == pytest.approx(5.66, rel=0.05)
    assert by_mb[128].edp_benefit == pytest.approx(6.8, rel=0.05)


def test_capacity_sweep_monotone_cs(pdk):
    points = sweep_rram_capacity(pdk=pdk)
    cs_counts = [p.n_cs for p in points]
    assert cs_counts == sorted(cs_counts)


def test_capacity_sweep_custom_points(pdk):
    points = sweep_rram_capacity((24 * MEGABYTE, 48 * MEGABYTE), pdk=pdk)
    assert len(points) == 2
    assert points[0].n_cs < points[1].n_cs
