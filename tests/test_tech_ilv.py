"""Inter-layer via model."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.ilv import ILVModel, default_ilv


def test_default_pitch_positive():
    assert default_ilv().pitch > 0


def test_scaled_pitch():
    ilv = default_ilv()
    assert ilv.scaled(1.3).pitch == pytest.approx(1.3 * ilv.pitch)


def test_scaled_preserves_rc():
    ilv = default_ilv()
    scaled = ilv.scaled(2.0)
    assert scaled.resistance == ilv.resistance
    assert scaled.capacitance == ilv.capacitance


def test_scaled_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        default_ilv().scaled(0.0)


def test_density_inverse_square_of_pitch():
    ilv = default_ilv()
    assert ilv.scaled(2.0).density_per_m2 == pytest.approx(
        ilv.density_per_m2 / 4.0)


def test_rc_delay_product():
    ilv = ILVModel(pitch=1e-7, resistance=10.0, capacitance=1e-16)
    assert ilv.rc_delay() == pytest.approx(1e-15)


def test_rc_delay_negligible_vs_gate_delay():
    from repro.tech import constants
    assert default_ilv().rc_delay() < constants.GATE_DELAY_130NM / 1000


def test_invalid_pitch_rejected():
    with pytest.raises(ConfigurationError):
        ILVModel(pitch=-1.0)
