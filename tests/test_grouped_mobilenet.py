"""Grouped/depthwise convolutions and MobileNetV1."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.systolic import default_systolic_array
from repro.mapper.loopnest import loop_nest_of
from repro.perf import compare_designs, simulate
from repro.perf.tilesim import tile_simulate
from repro.workloads.layers import ConvLayer
from repro.workloads.models import build_network, mobilenet_v1
from repro.workloads.partition import max_parallel_partitions


def _depthwise(channels=64, in_size=28):
    return ConvLayer("dw", in_channels=channels, out_channels=channels,
                     kernel=3, stride=1, in_size=in_size, padding=1,
                     groups=channels)


def test_depthwise_weights():
    layer = _depthwise(64)
    assert layer.weights == 64 * 9  # one 3x3 filter per channel


def test_depthwise_macs():
    layer = _depthwise(64, in_size=28)
    assert layer.macs == 64 * 9 * 28 * 28


def test_grouped_conv_weights():
    layer = ConvLayer("g", in_channels=64, out_channels=128, kernel=3,
                      stride=1, in_size=28, padding=1, groups=4)
    assert layer.weights == 128 * 16 * 9


def test_groups_must_divide_channels():
    with pytest.raises(ConfigurationError):
        ConvLayer("bad", in_channels=64, out_channels=100, kernel=3,
                  stride=1, in_size=28, padding=1, groups=8)


def test_dense_layer_groups_default():
    layer = ConvLayer("d", in_channels=64, out_channels=64, kernel=3,
                      stride=1, in_size=28, padding=1)
    assert layer.channel_groups == 1


def test_depthwise_tiles_per_group():
    """Each depthwise group is its own tile: N# = channel count."""
    layer = _depthwise(512)
    assert max_parallel_partitions(layer, 16) == 512


def test_depthwise_row_packing_applies():
    array = default_systolic_array()
    layer = _depthwise(64)
    assert array.uses_row_packing(layer)  # C_g = 1 < 16 rows
    assert array.row_tiles(layer) == 1
    assert array.kernel_passes(layer) == 3


def test_depthwise_slab_count():
    array = default_systolic_array()
    layer = _depthwise(64)
    assert array.slab_count(layer) == 64 * 1 * 3


def test_mapper_rejects_grouped():
    with pytest.raises(ConfigurationError, match="dense convolutions"):
        loop_nest_of(_depthwise())


def test_mobilenet_parameter_count():
    assert mobilenet_v1().total_weights == pytest.approx(4.2e6, rel=0.02)


def test_mobilenet_registered():
    assert build_network("mobilenet_v1").name == "mobilenet_v1"


def test_mobilenet_block_structure():
    net = mobilenet_v1()
    dw = net.layer("B7.DW")
    pw = net.layer("B7.PW")
    assert dw.channel_groups == dw.in_channels == 512
    assert pw.channel_groups == 1
    assert pw.kernel == 1


def test_mobilenet_m3d_benefit(pdk, baseline, m3d):
    """The M3D benefit survives the depthwise-hostile workload."""
    net = mobilenet_v1()
    benefit = compare_designs(
        simulate(baseline, net, pdk), simulate(m3d, net, pdk))
    assert 5.0 < benefit.edp_benefit < 8.0


def test_mobilenet_depthwise_parallelizes_fully(pdk, m3d):
    """512 groups -> every CS busy even though each tile is tiny."""
    report = simulate(m3d, mobilenet_v1(), pdk)
    assert report.layer_result("B7.DW").used_cs == m3d.n_cs


def test_mobilenet_event_sim_agreement_2d(pdk, baseline):
    net = mobilenet_v1()
    closed = simulate(baseline, net, pdk).cycles
    event = tile_simulate(baseline, net, pdk).cycles
    assert event == pytest.approx(closed, rel=0.02)


def test_mobilenet_event_sim_never_slower_m3d(pdk, m3d):
    """Tiny depthwise drains pipeline across CSs: the event model may run
    up to ~10% under the additive closed form, never over it."""
    net = mobilenet_v1()
    closed = simulate(m3d, net, pdk).cycles
    event = tile_simulate(m3d, net, pdk).cycles
    assert event <= closed * 1.001
    assert event == pytest.approx(closed, rel=0.12)
