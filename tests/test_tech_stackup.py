"""Tier stack-ups: M3D, 2D-restricted, and interleaved."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.stackup import (
    LayerStack,
    Tier,
    TierKind,
    baseline_2d_stackup,
    interleaved_stackup,
    m3d_stackup,
)


def test_m3d_stack_has_cnfet_tier():
    assert m3d_stackup().has_cnfet_tier


def test_m3d_stack_bottom_is_silicon():
    stack = m3d_stackup()
    assert stack.tiers[0].kind == TierKind.SILICON_LOGIC
    assert stack.tiers[0].level == 0


def test_2d_stack_blocks_cnfet_placement():
    stack = baseline_2d_stackup()
    cnfet = stack.tier("cnfet")
    assert not cnfet.placeable
    assert cnfet.routable  # routing through the tier stays allowed


def test_2d_stack_same_tier_count_as_m3d():
    assert len(baseline_2d_stackup().tiers) == len(m3d_stackup().tiers)


def test_placeable_tiers_m3d():
    names = {t.name for t in m3d_stackup().placeable_tiers()}
    assert names == {"si_cmos", "rram", "cnfet"}


def test_placeable_tiers_2d():
    names = {t.name for t in baseline_2d_stackup().placeable_tiers()}
    assert names == {"si_cmos", "rram"}


def test_device_tiers_excludes_metal():
    for tier in m3d_stackup().device_tiers():
        assert tier.kind != TierKind.METAL_ROUTING


def test_tier_lookup_by_name():
    assert m3d_stackup().tier("rram").kind == TierKind.RRAM


def test_tier_lookup_unknown_raises():
    with pytest.raises(KeyError):
        m3d_stackup().tier("nonexistent")


def test_thermal_resistance_grows_with_level():
    stack = m3d_stackup()
    bottom = stack.thermal_resistance_to_ambient(0)
    top = stack.thermal_resistance_to_ambient(4)
    assert top > bottom


def test_interleaved_stack_pair_count():
    stack = interleaved_stackup(3)
    cnfet_tiers = [t for t in stack.tiers if t.kind == TierKind.CNFET_LOGIC]
    rram_tiers = [t for t in stack.tiers if t.kind == TierKind.RRAM]
    assert len(cnfet_tiers) == 3
    assert len(rram_tiers) == 3


def test_interleaved_stack_rejects_zero_pairs():
    with pytest.raises(ConfigurationError):
        interleaved_stackup(0)


def test_stack_rejects_unordered_tiers():
    with pytest.raises(ConfigurationError):
        LayerStack(name="bad", tiers=(
            Tier("a", TierKind.SILICON_LOGIC, level=1, placeable=True,
                 routable=False),
            Tier("b", TierKind.RRAM, level=0, placeable=True, routable=False),
        ))


def test_stack_rejects_duplicate_names():
    with pytest.raises(ConfigurationError):
        LayerStack(name="bad", tiers=(
            Tier("a", TierKind.SILICON_LOGIC, level=0, placeable=True,
                 routable=False),
            Tier("a", TierKind.RRAM, level=1, placeable=True, routable=False),
        ))
