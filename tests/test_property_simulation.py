"""Property-based tests on the simulator, mapper, and thermal models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thermal import ThermalStack, temperature_rise
from repro.perf.simulator import AcceleratorSimulator
from repro.tech import foundry_m3d_pdk
from repro.arch import m3d_design
from repro.workloads.layers import ConvLayer

_PDK = foundry_m3d_pdk()
_SIMULATORS = {
    n: AcceleratorSimulator(m3d_design(_PDK, n_cs=n), _PDK)
    for n in (1, 2, 4, 8, 16)
}

conv_layers = st.builds(
    ConvLayer,
    name=st.just("c"),
    in_channels=st.integers(min_value=1, max_value=512),
    out_channels=st.integers(min_value=1, max_value=512),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
    in_size=st.integers(min_value=8, max_value=64),
    padding=st.integers(min_value=0, max_value=2),
)


@given(conv_layers, st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=60)
def test_more_cs_never_slower(layer, n_cs):
    """Adding CSs can only reduce (or hold) the layer latency."""
    small = _SIMULATORS[n_cs].run_layer(layer)
    large = _SIMULATORS[2 * n_cs].run_layer(layer)
    assert large.cycles <= small.cycles * (1 + 1e-12)


@given(conv_layers)
@settings(max_examples=60)
def test_speedup_bounded_by_partitions(layer):
    one = _SIMULATORS[1].run_layer(layer)
    eight = _SIMULATORS[8].run_layer(layer)
    k_tiles = -(-layer.out_channels // 16)
    assert one.cycles / eight.cycles <= min(8, k_tiles) + 1e-9


@given(conv_layers)
@settings(max_examples=60)
def test_compute_cycles_cover_macs(layer):
    """A CS cannot beat its peak throughput on its slice of the work."""
    result = _SIMULATORS[8].run_layer(layer)
    slice_macs = layer.macs / min(8, -(-layer.out_channels // 16))
    assert result.compute_cycles * 256 >= slice_macs * (1 - 1e-9)


@given(conv_layers)
@settings(max_examples=60)
def test_energy_positive_and_finite(layer):
    result = _SIMULATORS[8].run_layer(layer)
    assert 0 < result.energy < 1.0  # joules; a single layer is << 1 J


@given(conv_layers)
@settings(max_examples=40)
def test_dynamic_energy_work_proportional(layer):
    """Dynamic energy is identical across CS counts up to the output
    broadcast term (which grows with N)."""
    e1 = _SIMULATORS[1].run_layer(layer).dynamic_energy
    e8 = _SIMULATORS[8].run_layer(layer).dynamic_energy
    assert e8 >= e1 * (1 - 1e-12)
    # Worst case: the output-broadcast SRAM term (x(1 + N)) dominates a
    # degenerate layer entirely -> bounded by (1 + 8) / (1 + 1).
    assert e8 <= e1 * 4.5


@given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1,
                max_size=12))
def test_thermal_rise_nonnegative(powers):
    assert temperature_rise(powers) >= 0.0


@given(st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2,
                max_size=8))
def test_thermal_rise_monotone_in_power(powers):
    doubled = [2 * p for p in powers]
    assert temperature_rise(doubled) >= temperature_rise(powers)


@given(st.lists(st.floats(min_value=0.1, max_value=50.0), min_size=2,
                max_size=8))
def test_thermal_sorting_heavy_tiers_down_helps(powers):
    """Placing high-power pairs closer to the heat sink minimizes rise."""
    stack = ThermalStack()
    best = temperature_rise(sorted(powers, reverse=True), stack)
    worst = temperature_rise(sorted(powers), stack)
    assert best <= worst + 1e-9
