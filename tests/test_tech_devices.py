"""FET models: Si CMOS and BEOL CNFETs."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.devices import (
    FETKind,
    access_fet_width_relaxation,
    beol_cnfet,
    silicon_nmos,
    silicon_pmos,
)
from repro.tech.node import NODE_130NM


def test_nmos_defaults_to_min_width():
    fet = silicon_nmos(NODE_130NM)
    assert fet.width == pytest.approx(2 * NODE_130NM.feature_size)
    assert fet.kind == FETKind.SILICON_NMOS


def test_nmos_is_not_beol_compatible():
    assert not silicon_nmos(NODE_130NM).beol_compatible


def test_cnfet_is_beol_compatible():
    assert beol_cnfet(NODE_130NM).beol_compatible


def test_pmos_weaker_than_nmos():
    nmos = silicon_nmos(NODE_130NM)
    pmos = silicon_pmos(NODE_130NM)
    assert pmos.drive_current_per_width < nmos.drive_current_per_width


def test_cnfet_drive_derated():
    nmos = silicon_nmos(NODE_130NM)
    cnfet = beol_cnfet(NODE_130NM, relative_drive=0.7)
    assert cnfet.drive_current_per_width == pytest.approx(
        0.7 * nmos.drive_current_per_width)


def test_on_current_scales_with_width():
    fet = silicon_nmos(NODE_130NM)
    wide = fet.widened(3.0)
    assert wide.on_current == pytest.approx(3.0 * fet.on_current)


def test_widened_preserves_kind():
    assert beol_cnfet(NODE_130NM).widened(2.0).kind == FETKind.CNFET


def test_widened_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        silicon_nmos(NODE_130NM).widened(0.0)


def test_width_for_current_inverts_on_current():
    fet = silicon_nmos(NODE_130NM)
    width = fet.width_for_current(fet.on_current)
    assert width == pytest.approx(fet.width)


def test_width_for_current_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        silicon_nmos(NODE_130NM).width_for_current(0.0)


def test_access_fet_width_relaxation_matches_drive_ratio():
    reference = silicon_nmos(NODE_130NM)
    candidate = beol_cnfet(NODE_130NM, relative_drive=0.5)
    assert access_fet_width_relaxation(reference, candidate) == pytest.approx(2.0)


def test_relaxation_is_one_for_equal_devices():
    reference = silicon_nmos(NODE_130NM)
    assert access_fet_width_relaxation(reference, reference) == pytest.approx(1.0)


def test_cnfet_leakage_lower_than_si():
    nmos = silicon_nmos(NODE_130NM)
    cnfet = beol_cnfet(NODE_130NM)
    assert cnfet.leakage_current_per_width < nmos.leakage_current_per_width


def test_custom_width_respected():
    fet = silicon_nmos(NODE_130NM, width=1e-6)
    assert fet.width == pytest.approx(1e-6)
