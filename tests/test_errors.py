"""Error hierarchy and the require() guard."""

import pytest

from repro.errors import (
    ConfigurationError,
    FloorplanError,
    MappingError,
    ModelError,
    ReproError,
    require,
)


def test_all_errors_derive_from_repro_error():
    for exc in (ConfigurationError, ModelError, FloorplanError, MappingError):
        assert issubclass(exc, ReproError)


def test_repro_error_derives_from_exception():
    assert issubclass(ReproError, Exception)


def test_require_passes_on_true():
    require(True, "never raised")


def test_require_raises_configuration_error():
    with pytest.raises(ConfigurationError, match="bad value"):
        require(False, "bad value")


def test_require_message_preserved():
    with pytest.raises(ConfigurationError) as excinfo:
        require(1 > 2, "one is not greater than two")
    assert "one is not greater than two" in str(excinfo.value)
