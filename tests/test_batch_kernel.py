"""The vectorized batch kernel: parity, delta-evaluation, fallbacks.

The contract under test (ISSUE PR 7 acceptance):

* the scalar path is untouched — ``evaluate_spec`` equals the direct
  resolve+simulate pipeline bit-for-bit;
* the batched path agrees with the scalar path within 1e-9 relative on
  speedup/energy/EDP (and exactly on CS counts and footprints);
* the pure-python backend (numpy forced off) is *bit-identical* to the
  scalar path;
* engine cache keys are identical between the paths (a scalar-warmed
  cache serves a batch run and vice versa), as are stage counters;
* specs the kernel cannot express fall back to scalar evaluation with
  unchanged error behavior, counted as ``batch.fallback_scalar``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchKernel,
    UnsupportedSpec,
    numpy_available,
    pack_point,
    set_numpy_enabled,
    spec_call_key,
)
from repro.errors import ReproError
from repro.perf.compare import compare_designs
from repro.perf.simulator import simulate
from repro.runtime.engine import EvaluationEngine
from repro.runtime.keys import call_key
from repro.runtime.memo import counter_stats
from repro.spec import (
    ArchSpec,
    DesignSpec,
    SweepSpec,
    TechSpec,
    WorkloadSpec,
    evaluate_spec,
    evaluate_specs,
    resolve,
    scaled_pdk,
)
from repro.sweep import run_streaming_sweep
from repro.tech.pdk import foundry_m3d_pdk
from repro.units import MEGABYTE

REL = 1e-9


def _grid_specs() -> list[DesignSpec]:
    """A DSE-like joint grid (the ``core.dse`` axes)."""
    return [
        DesignSpec(
            tech=TechSpec(delta=delta, beta=beta),
            arch=ArchSpec(capacity_bits=mb * MEGABYTE, tier_pairs=pairs),
        )
        for mb in (32, 64, 128)
        for delta in (1.0, 2.0)
        for beta in (1.0, 1.3)
        for pairs in (1, 2)
    ]


EDGE_SPECS = [
    DesignSpec(),
    DesignSpec(tech=TechSpec(memory="stt_mram")),
    DesignSpec(tech=TechSpec(memory="fefet", delta=2.0)),
    DesignSpec(arch=ArchSpec(cs="precision-scaled", precision_bits=4)),
    DesignSpec(arch=ArchSpec(cs="precision-scaled", precision_bits=16)),
    DesignSpec(arch=ArchSpec(n_cs=5)),
    DesignSpec(arch=ArchSpec(baseline="reoptimized", tier_pairs=2)),
    DesignSpec(workload=WorkloadSpec(network="alexnet", batch=8)),
    DesignSpec(workload=WorkloadSpec(network="tiny_encoder")),
    DesignSpec(workload=WorkloadSpec(network="resnet18", layer="CONV1")),
]


def _assert_close(batched, scalar, rel=REL):
    assert batched.spec == scalar.spec
    assert batched.n_cs_2d == scalar.n_cs_2d
    assert batched.n_cs_m3d == scalar.n_cs_m3d
    assert batched.footprint == scalar.footprint
    assert batched.speedup == pytest.approx(scalar.speedup, rel=rel)
    assert batched.energy_benefit == \
        pytest.approx(scalar.energy_benefit, rel=rel)
    assert batched.edp_benefit == pytest.approx(scalar.edp_benefit, rel=rel)


# --- parity ----------------------------------------------------------------------


def test_scalar_path_is_bit_identical_to_direct_pipeline():
    """The golden guard: evaluate_spec == resolve+simulate, exactly."""
    spec = DesignSpec()
    point = resolve(spec, None)
    benefit = compare_designs(
        simulate(point.baseline, point.network, point.pdk),
        simulate(point.m3d, point.network, point.pdk),
    )
    evaluation = evaluate_spec(spec)
    assert evaluation.speedup == benefit.speedup
    assert evaluation.energy_benefit == benefit.energy_benefit
    assert evaluation.edp_benefit == benefit.edp_benefit
    assert evaluation.footprint == point.footprint


def test_dse_grid_parity():
    specs = _grid_specs()
    scalar = evaluate_specs(specs, engine=EvaluationEngine(jobs=1))
    batched = evaluate_specs(specs, engine=EvaluationEngine(jobs=1),
                             batch=True)
    assert len(batched) == len(scalar) == len(specs)
    for b, s in zip(batched, scalar):
        _assert_close(b, s)


def test_edge_spec_parity():
    scalar = evaluate_specs(EDGE_SPECS, engine=EvaluationEngine(jobs=1))
    batched = evaluate_specs(EDGE_SPECS, engine=EvaluationEngine(jobs=1),
                             batch=True)
    for b, s in zip(batched, scalar):
        _assert_close(b, s)


def test_batch_size_chunking_matches_single_batch():
    specs = _grid_specs()
    whole = evaluate_specs(specs, engine=EvaluationEngine(jobs=1), batch=True)
    chunked = evaluate_specs(specs, engine=EvaluationEngine(jobs=1),
                             batch_size=5)
    assert whole == chunked


@pytest.mark.skipif(not numpy_available(), reason="needs numpy to compare")
def test_python_backend_is_bit_identical_to_scalar():
    from repro.batch.pack import ROW_RESULTS

    specs = _grid_specs() + EDGE_SPECS
    scalar = evaluate_specs(specs, engine=EvaluationEngine(jobs=1))
    previous = set_numpy_enabled(False)
    ROW_RESULTS.clear()  # drop totals memoized by earlier numpy batches
    try:
        kernel = BatchKernel()
        batched = kernel.evaluate_specs(specs)
    finally:
        set_numpy_enabled(previous)
        ROW_RESULTS.clear()  # don't leak python-mode totals either
    for b, s in zip(batched, scalar):
        assert b.speedup == s.speedup
        assert b.energy_benefit == s.energy_benefit
        assert b.edp_benefit == s.edp_benefit
        assert b.footprint == s.footprint


_SPECS = st.builds(
    DesignSpec,
    tech=st.builds(
        TechSpec,
        delta=st.floats(min_value=1.0, max_value=4.0,
                        allow_nan=False, allow_infinity=False),
        beta=st.floats(min_value=0.5, max_value=2.0,
                       allow_nan=False, allow_infinity=False),
        memory=st.sampled_from([None, "rram", "stt_mram", "fefet"]),
    ),
    arch=st.builds(
        ArchSpec,
        capacity_bits=st.sampled_from(
            [mb * MEGABYTE for mb in (16, 32, 64, 128)]),
        tier_pairs=st.integers(min_value=1, max_value=4),
        n_cs=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
        baseline=st.sampled_from(["iso", "reoptimized"]),
        cs=st.sampled_from(["case-study", "precision-scaled"]),
        precision_bits=st.sampled_from([4, 8, 16]),
    ),
    workload=st.builds(
        WorkloadSpec,
        network=st.sampled_from(["resnet18", "alexnet", "tiny_encoder"]),
        layer=st.none(),
        batch=st.integers(min_value=1, max_value=64),
    ),
)


@settings(max_examples=40, deadline=None)
@given(spec=_SPECS)
def test_random_spec_parity(spec):
    kernel = BatchKernel()
    try:
        scalar = evaluate_spec(spec)
    except ReproError:
        with pytest.raises(ReproError):
            kernel.evaluate_specs([spec])
        return
    batched, = kernel.evaluate_specs([spec])
    _assert_close(batched, scalar)


# --- cache keys and counters -----------------------------------------------------


def test_fast_key_matches_generic_call_key():
    pdk = foundry_m3d_pdk()
    for args in [(DesignSpec(),), (EDGE_SPECS[3],), (DesignSpec(), pdk)]:
        assert spec_call_key(evaluate_spec, args, {}) \
            == call_key(evaluate_spec, args, {})


def test_batch_run_is_served_by_scalar_warmed_cache():
    specs = _grid_specs()
    engine = EvaluationEngine(jobs=1)
    scalar = evaluate_specs(specs, engine=engine)
    batched = evaluate_specs(specs, engine=engine, batch=True)
    assert batched == scalar  # cache returns the very same objects
    stats = {s.name: s for s in engine.report().stages}
    stage = stats["spec.evaluate"]
    assert stage.calls == 2 * len(specs)
    assert stage.evaluated == len(specs)
    assert stage.cache_hits == len(specs)


def test_scalar_run_is_served_by_batch_warmed_cache():
    specs = _grid_specs()
    engine = EvaluationEngine(jobs=1)
    batched = evaluate_specs(specs, engine=engine, batch=True)
    scalar = evaluate_specs(specs, engine=engine)
    assert scalar == batched
    stage = {s.name: s for s in engine.report().stages}["spec.evaluate"]
    assert stage.cache_hits == len(specs)


def test_batch_counters_track_points_and_delta_hits():
    specs = _grid_specs()
    before = {name: dict(values)
              for name, values in
              ((c.name, c.values) for c in counter_stats())}.get("batch", {})
    evaluate_specs(specs, engine=EvaluationEngine(jobs=1), batch=True)
    after = dict(next(c for c in counter_stats()
                      if c.name == "batch").values)
    assert after.get("points", 0) - before.get("points", 0) == len(specs)
    # Every spec needs 2 rows but the grid collapses heavily: beta and
    # tier_pairs often leave the derived rows unchanged.
    assert after.get("delta_hits", 0) > before.get("delta_hits", 0)
    assert after.get("fallback_scalar", 0) == before.get("fallback_scalar", 0)


def test_mismatched_pdk_falls_back_to_scalar():
    kernel = BatchKernel()  # default-PDK kernel
    other = scaled_pdk(foundry_m3d_pdk(), 1.5)
    spec = DesignSpec()
    before = dict(next((c.values for c in counter_stats()
                        if c.name == "batch"), ()))
    result, = kernel.evaluate_calls([((spec, other), {})])
    after = dict(next(c for c in counter_stats()
                      if c.name == "batch").values)
    assert result == evaluate_spec(spec, other)
    assert after["fallback_scalar"] - before.get("fallback_scalar", 0) == 1


def test_unsupported_spec_raises_the_scalar_diagnostic():
    # 12 MB cannot hold ResNet-18's ~12M 8-bit weights: the kernel
    # refuses the point and the scalar fallback raises as it always did.
    spec = DesignSpec(arch=ArchSpec(capacity_bits=MEGABYTE))
    with pytest.raises(ReproError):
        evaluate_spec(spec)
    with pytest.raises(ReproError):
        BatchKernel().evaluate_specs([spec])


def test_pack_point_rejects_what_the_row_schema_cannot_express():
    with pytest.raises(UnsupportedSpec):
        pack_point(DesignSpec(arch=ArchSpec(capacity_bits=MEGABYTE)),
                   foundry_m3d_pdk())


# --- wired call sites ------------------------------------------------------------


def _small_sweep() -> SweepSpec:
    return SweepSpec(grid=(
        ("arch.capacity_bits", (24 * MEGABYTE, 48 * MEGABYTE)),
        ("tech.delta", (1.0, 2.0)),
        ("arch.tier_pairs", (1, 2)),
    ))


def test_streaming_sweep_batch_parity():
    sweep = _small_sweep()
    scalar = run_streaming_sweep(sweep, engine=EvaluationEngine(jobs=1),
                                 chunk_size=3)
    batched = run_streaming_sweep(sweep, engine=EvaluationEngine(jobs=1),
                                  chunk_size=3, batch=True)
    assert batched.points == scalar.points
    assert batched.pruned == scalar.pruned == 0
    for b, s in zip(batched.evaluations, scalar.evaluations):
        _assert_close(b, s)
    assert len(batched.frontier) == len(scalar.frontier)


def test_streaming_sweep_batch_shares_the_scalar_cache():
    sweep = _small_sweep()
    engine = EvaluationEngine(jobs=1)
    run_streaming_sweep(sweep, engine=engine, chunk_size=3)
    run_streaming_sweep(sweep, engine=engine, chunk_size=3, batch=True)
    stage = {s.name: s for s in engine.report().stages}["sweep.evaluate"]
    assert stage.cache_hits == len(sweep)


def test_dse_explore_batch_parity():
    from repro.core.dse import explore

    scalar = explore(engine=EvaluationEngine(jobs=1))
    batched = explore(engine=EvaluationEngine(jobs=1), batch=True)
    assert len(batched) == len(scalar)
    for b, s in zip(batched, scalar):
        assert (b.capacity_bits, b.delta, b.beta, b.tier_pairs) \
            == (s.capacity_bits, s.delta, s.beta, s.tier_pairs)
        assert (b.n_cs, b.n_cs_2d) == (s.n_cs, s.n_cs_2d)
        assert b.footprint == s.footprint
        assert b.speedup == pytest.approx(s.speedup, rel=REL)
        assert b.edp_benefit == pytest.approx(s.edp_benefit, rel=REL)


def test_cli_sweep_batch(tmp_path, capsys):
    from repro.cli import main

    spec_file = tmp_path / "sweep.json"
    spec_file.write_text(
        '{"grid": {"arch.capacity_mb": [32, 64], "tech.delta": [1, 2]}}')
    assert main(["sweep", "--spec", str(spec_file), "--batch"]) == 0
    batched = capsys.readouterr().out
    assert main(["sweep", "--spec", str(spec_file)]) == 0
    scalar = capsys.readouterr().out
    assert batched == scalar
