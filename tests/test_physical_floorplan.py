"""Floorplanner geometry and blockage semantics."""

import pytest

from repro.errors import FloorplanError
from repro.physical.floorplan import Floorplan, PlacedBlock, Rect, build_floorplan
from repro.physical.netlist import BlockKind, synthesize


@pytest.fixture(scope="module")
def plan_2d(pdk, baseline):
    return build_floorplan(synthesize(baseline, pdk), baseline, pdk)


@pytest.fixture(scope="module")
def plan_m3d(pdk, m3d):
    return build_floorplan(synthesize(m3d, pdk), m3d, pdk)


# --- Rect geometry ---------------------------------------------------------------

def test_rect_area():
    assert Rect(0, 0, 2, 3).area == pytest.approx(6)


def test_rect_center():
    assert Rect(1, 1, 2, 2).center == (2.0, 2.0)


def test_rect_overlap_detection():
    a = Rect(0, 0, 2, 2)
    assert a.overlaps(Rect(1, 1, 2, 2))
    assert not a.overlaps(Rect(2, 0, 1, 1))  # abutting, no interior overlap
    assert not a.overlaps(Rect(5, 5, 1, 1))


def test_rect_containment():
    outer = Rect(0, 0, 10, 10)
    assert outer.contains(Rect(1, 1, 2, 2))
    assert not outer.contains(Rect(9, 9, 2, 2))


# --- floorplans --------------------------------------------------------------------

def test_plans_validate(plan_2d, plan_m3d):
    plan_2d.validate()
    plan_m3d.validate()


def test_iso_footprint(plan_2d, plan_m3d):
    assert plan_2d.footprint == pytest.approx(plan_m3d.footprint)


def test_2d_arrays_block_silicon(plan_2d):
    array = plan_2d.placed("rram_bank0")
    assert "si_cmos" in array.tiers
    assert "rram" in array.tiers


def test_m3d_arrays_free_silicon(plan_m3d):
    """The paper's key mechanism: M3D array macros block only the RRAM and
    CNFET tiers — the silicon underneath stays placeable."""
    array = plan_m3d.placed("rram_bank0")
    assert "si_cmos" not in array.tiers
    assert array.tiers == frozenset({"rram", "cnfet"})


def test_2d_silicon_fully_used(plan_2d):
    assert plan_2d.tier_utilization("si_cmos") == pytest.approx(1.0, abs=0.01)


def test_m3d_silicon_has_slack(plan_m3d):
    util = plan_m3d.tier_utilization("si_cmos")
    assert 0.85 < util < 1.0


def test_m3d_free_si_positive(plan_m3d):
    assert plan_m3d.free_si_area() > 0


def test_m3d_cs_sits_under_arrays(plan_m3d):
    """At least one CS block must overlap the array band in (x, y) — the
    'compute under memory' geometry of Fig. 2d."""
    arrays = [p.rect for p in plan_m3d.placements
              if p.kind == BlockKind.RRAM_MACRO]
    cs_rects = [p.rect for p in plan_m3d.placements
                if p.name.startswith("cs") and not p.name.endswith("_buf")]
    assert any(cs.overlaps(a) for cs in cs_rects for a in arrays)


def test_2d_cs_not_under_arrays(plan_2d):
    """In 2D the CS must sit beside the arrays (full blockage)."""
    arrays = [p.rect for p in plan_2d.placements
              if p.kind == BlockKind.RRAM_MACRO]
    cs = plan_2d.placed("cs0").rect
    assert not any(cs.overlaps(a) for a in arrays)


def test_all_blocks_inside_die(plan_m3d):
    for block in plan_m3d.placements:
        assert plan_m3d.die.contains(block.rect)


def test_peripherals_in_silicon(plan_m3d):
    perif = plan_m3d.placed("perif0")
    assert perif.tiers == frozenset({"si_cmos"})


def test_overlap_validation_catches_violation(plan_2d):
    bad = Floorplan(
        name="bad", die=plan_2d.die,
        placements=plan_2d.placements + (PlacedBlock(
            name="intruder", rect=plan_2d.placed("cs0").rect,
            tiers=frozenset({"si_cmos"}), kind=BlockKind.LOGIC),),
    )
    with pytest.raises(FloorplanError, match="overlaps"):
        bad.validate()


def test_out_of_die_validation(plan_2d):
    bad = Floorplan(
        name="bad", die=plan_2d.die,
        placements=(PlacedBlock(
            name="escapee",
            rect=Rect(plan_2d.die.width, 0, 1e-3, 1e-3),
            tiers=frozenset({"si_cmos"}), kind=BlockKind.LOGIC),),
    )
    with pytest.raises(FloorplanError, match="beyond the die"):
        bad.validate()


def test_unknown_placement_raises(plan_2d):
    with pytest.raises(KeyError):
        plan_2d.placed("ghost")


def test_rram_tier_utilization_matches_cell_area(plan_m3d, m3d):
    util = plan_m3d.tier_utilization("rram")
    expected = m3d.area.cells / m3d.area.footprint
    assert util == pytest.approx(expected, rel=0.01)
