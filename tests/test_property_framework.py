"""Property-based tests on the analytical framework (Eqs. 1-8)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.framework import (
    DesignPoint,
    Workload,
    edp_benefit,
    energy,
    execution_time,
    speedup,
    used_partitions,
)

workloads = st.builds(
    Workload,
    compute_ops=st.floats(min_value=1.0, max_value=1e12),
    data_bits=st.floats(min_value=1.0, max_value=1e12),
    max_partitions=st.one_of(
        st.just(math.inf), st.integers(min_value=1, max_value=64)),
)

design_points = st.builds(
    DesignPoint,
    n_cs=st.integers(min_value=1, max_value=64),
    peak_ops_per_cycle=st.floats(min_value=1.0, max_value=1e5),
    bandwidth_bits_per_cycle=st.floats(min_value=1.0, max_value=1e6),
    memory_energy_per_bit=st.floats(min_value=1e-18, max_value=1e-9),
    compute_energy_per_op=st.floats(min_value=1e-18, max_value=1e-9),
    cs_idle_energy_per_cycle=st.floats(min_value=0.0, max_value=1e-9),
    memory_idle_energy_per_cycle=st.floats(min_value=0.0, max_value=1e-9),
)


@given(workloads, design_points)
def test_execution_time_positive(workload, design):
    assert execution_time(workload, design) > 0


@given(workloads, design_points)
def test_execution_time_at_least_each_bound(workload, design):
    t = execution_time(workload, design)
    n_max = used_partitions(workload, design)
    assert t >= workload.compute_ops / (n_max * design.peak_ops_per_cycle) \
        * (1 - 1e-12)
    assert t >= workload.data_bits * design.n_cs \
        / design.bandwidth_bits_per_cycle * (1 - 1e-12)


@given(workloads, design_points, st.floats(min_value=1.01, max_value=100.0))
def test_more_bandwidth_never_slower(workload, design, factor):
    faster = design.with_bandwidth(design.bandwidth_bits_per_cycle * factor)
    assert execution_time(workload, faster) \
        <= execution_time(workload, design) * (1 + 1e-9)


@given(workloads, design_points, st.floats(min_value=1.0, max_value=1000.0))
def test_time_scales_with_workload(workload, design, scale):
    """Scaling F0 and D0 together scales T (roofline homogeneity)."""
    scaled = Workload(compute_ops=workload.compute_ops * scale,
                      data_bits=workload.data_bits * scale,
                      max_partitions=workload.max_partitions)
    t1 = execution_time(workload, design)
    t2 = execution_time(scaled, design)
    assert t2 >= t1 * (1 - 1e-9)
    assert abs(t2 - scale * t1) <= 1e-6 * t2


@given(workloads, design_points)
def test_energy_at_least_pure_work(workload, design):
    floor = (design.memory_energy_per_bit * workload.data_bits
             + design.compute_energy_per_op * workload.compute_ops)
    assert energy(workload, design) >= floor * (1 - 1e-12)


@given(workloads, design_points)
def test_self_benefit_is_unity(workload, design):
    assert abs(speedup(workload, design, design) - 1.0) < 1e-9
    assert abs(edp_benefit(workload, design, design) - 1.0) < 1e-9


@given(workloads, design_points)
def test_used_partitions_bounds(workload, design):
    n_max = used_partitions(workload, design)
    assert 1 <= n_max <= design.n_cs
    assert n_max <= workload.max_partitions


@given(workloads, design_points)
@settings(max_examples=50)
def test_edp_benefit_is_speedup_times_energy_benefit(workload, design):
    other = design.with_n_cs(design.n_cs * 2).with_bandwidth(
        design.bandwidth_bits_per_cycle * 2)
    e_ratio = energy(workload, design) / energy(workload, other)
    expected = speedup(workload, design, other) * e_ratio
    assert abs(edp_benefit(workload, design, other) - expected) \
        <= 1e-9 * abs(expected)


@given(design_points, st.floats(min_value=0.1, max_value=1000.0))
def test_compute_bound_speedup_never_exceeds_partitions(design, intensity):
    workload = Workload(compute_ops=intensity * 1e6, data_bits=1e6,
                        max_partitions=8)
    parallel = design.with_n_cs(64).with_bandwidth(
        design.bandwidth_bits_per_cycle * 64)
    assert speedup(workload, design.with_n_cs(1), parallel) <= 8.0 * (
        design.n_cs and 1 + 1e-9)
