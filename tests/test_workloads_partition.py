"""Workload partitioning (the paper's N#)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads.layers import ConvLayer, FCLayer, PoolLayer
from repro.workloads.models import resnet18
from repro.workloads.partition import (
    k_tiles,
    max_parallel_partitions,
    partition_plan,
)


def _conv(out_channels, in_channels=64, in_size=28):
    return ConvLayer("c", in_channels=in_channels, out_channels=out_channels,
                     kernel=3, stride=1, in_size=in_size, padding=1)


def test_k_tiles_exact_multiple():
    assert k_tiles(_conv(128), 16) == 8


def test_k_tiles_rounds_up():
    assert k_tiles(_conv(100), 16) == 7


def test_k_tiles_minimum_one():
    assert k_tiles(_conv(8), 16) == 1


def test_resnet18_stage1_partitions_to_4():
    """K = 64 with a 16-wide array -> only 4 partitions: the reason the
    paper's Table I shows ~3.7x for stage-1 layers at N = 8."""
    layer = resnet18().layer("L1.0 CONV1")
    assert max_parallel_partitions(layer, 16) == 4


def test_resnet18_stage4_partitions_to_32():
    layer = resnet18().layer("L4.1 CONV2")
    assert max_parallel_partitions(layer, 16) == 32


def test_fc_partitions_along_outputs():
    fc = FCLayer("fc", in_features=512, out_features=1000)
    assert max_parallel_partitions(fc, 16) == 63


def test_pool_partitions_along_channels():
    pool = PoolLayer("p", channels=64, kernel=3, stride=2, in_size=112)
    assert max_parallel_partitions(pool, 16) == 4


def test_partition_plan_uses_min_of_n_and_tiles():
    plan = partition_plan(_conv(64), available_cs=8, array_columns=16)
    assert plan.used_cs == 4
    assert plan.idle_cs == 4


def test_partition_plan_all_cs_when_wide():
    plan = partition_plan(_conv(512), available_cs=8, array_columns=16)
    assert plan.used_cs == 8
    assert plan.idle_cs == 0
    assert plan.tiles_per_cs == 4


def test_partition_plan_ceil_imbalance():
    """17 tiles over 8 CSs: busiest CS takes 3 tiles, balance < 1."""
    plan = partition_plan(_conv(17 * 16), available_cs=8, array_columns=16)
    assert plan.tiles_total == 17
    assert plan.tiles_per_cs == 3
    assert plan.balance < 1.0


def test_partition_plan_perfect_balance():
    plan = partition_plan(_conv(128), available_cs=8, array_columns=16)
    assert plan.balance == pytest.approx(1.0)


def test_partition_plan_single_cs():
    plan = partition_plan(_conv(512), available_cs=1, array_columns=16)
    assert plan.used_cs == 1
    assert plan.tiles_per_cs == plan.tiles_total


def test_partition_plan_rejects_zero_cs():
    with pytest.raises(ConfigurationError):
        partition_plan(_conv(64), available_cs=0, array_columns=16)


def test_k_tiles_rejects_zero_columns():
    with pytest.raises(ConfigurationError):
        k_tiles(_conv(64), 0)
