"""Trace export and SVG layout export."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.simulator import simulate
from repro.perf.trace import TRACE_COLUMNS, dominant_layers, to_csv, trace_rows
from repro.physical.floorplan import build_floorplan
from repro.physical.layout_export import floorplan_to_svg, save_svg
from repro.physical.netlist import synthesize


@pytest.fixture(scope="module")
def report(pdk, m3d, resnet18_network):
    return simulate(m3d, resnet18_network, pdk)


@pytest.fixture(scope="module")
def m3d_plan(pdk, m3d):
    return build_floorplan(synthesize(m3d, pdk), m3d, pdk)


# --- trace -------------------------------------------------------------------------

def test_trace_one_row_per_layer(report, resnet18_network):
    assert len(trace_rows(report)) == len(resnet18_network.layers)


def test_trace_cycle_shares_sum_to_one(report):
    shares = [row.cycle_share for row in trace_rows(report)]
    assert sum(shares) == pytest.approx(1.0)


def test_trace_row_consistency(report):
    for row in trace_rows(report):
        assert row.total_cycles == pytest.approx(
            row.compute_cycles + row.writeback_cycles)


def test_trace_csv_header(report):
    csv = to_csv(report)
    assert csv.splitlines()[0] == ",".join(TRACE_COLUMNS)


def test_trace_csv_row_count(report, resnet18_network):
    csv = to_csv(report)
    assert len(csv.splitlines()) == 1 + len(resnet18_network.layers)


def test_trace_csv_parsable(report):
    for line in to_csv(report).splitlines()[1:]:
        fields = line.split(",")
        assert len(fields) == len(TRACE_COLUMNS)
        float(fields[3])  # compute_cycles parses as a number


def test_dominant_layers_sorted(report):
    top = dominant_layers(report, 4)
    cycles = [row.total_cycles for row in top]
    assert cycles == sorted(cycles, reverse=True)
    assert len(top) == 4


def test_dominant_layers_rejects_zero(report):
    with pytest.raises(ConfigurationError):
        dominant_layers(report, 0)


# --- layout export ---------------------------------------------------------------------

def test_svg_structure(m3d_plan):
    svg = floorplan_to_svg(m3d_plan)
    assert svg.startswith("<svg")
    assert svg.rstrip().endswith("</svg>")
    assert svg.count("<rect") == 1 + len(m3d_plan.placements)  # die + blocks


def test_svg_contains_block_titles(m3d_plan):
    svg = floorplan_to_svg(m3d_plan)
    assert "cs0" in svg
    assert "rram_bank0" in svg


def test_svg_m3d_arrays_translucent(m3d_plan):
    svg = floorplan_to_svg(m3d_plan)
    assert 'fill-opacity="0.35"' in svg  # upper-tier arrays


def test_svg_2d_arrays_opaque(pdk, baseline):
    plan = build_floorplan(synthesize(baseline, pdk), baseline, pdk)
    svg = floorplan_to_svg(plan)
    assert 'fill-opacity="0.35"' not in svg


def test_svg_custom_title(m3d_plan):
    svg = floorplan_to_svg(m3d_plan, title="hello <layout>")
    assert "hello &lt;layout&gt;" in svg


def test_save_svg(tmp_path, m3d_plan):
    path = tmp_path / "plan.svg"
    save_svg(m3d_plan, str(path))
    assert path.read_text().startswith("<svg")
