"""Layer shape arithmetic."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.workloads.layers import (
    ConvLayer,
    FCLayer,
    LayerKind,
    PoolLayer,
    arithmetic_intensity,
    weight_bits,
)


@pytest.fixture
def conv():
    return ConvLayer("c", in_channels=64, out_channels=128, kernel=3,
                     stride=1, in_size=28, padding=1)


def test_conv_out_size_same_padding(conv):
    assert conv.out_size == 28


def test_conv_out_size_stride2():
    layer = ConvLayer("c", in_channels=64, out_channels=128, kernel=3,
                      stride=2, in_size=56, padding=1)
    assert layer.out_size == 28


def test_conv_out_size_no_padding():
    layer = ConvLayer("c", in_channels=3, out_channels=96, kernel=11,
                      stride=4, in_size=227)
    assert layer.out_size == 55  # AlexNet conv1


def test_conv_weights(conv):
    assert conv.weights == 128 * 64 * 9


def test_conv_macs(conv):
    assert conv.macs == conv.weights * 28 * 28


def test_conv_element_counts(conv):
    assert conv.input_elements == 64 * 28 * 28
    assert conv.output_elements == 128 * 28 * 28


def test_conv_kind(conv):
    assert conv.kind == LayerKind.CONV


def test_conv_rejects_kernel_larger_than_input():
    with pytest.raises(ConfigurationError):
        ConvLayer("bad", in_channels=3, out_channels=8, kernel=7, stride=1,
                  in_size=5)


def test_fc_as_1x1_conv_view():
    layer = FCLayer("fc", in_features=512, out_features=1000)
    assert layer.in_channels == 512
    assert layer.out_channels == 1000
    assert layer.kernel == 1
    assert layer.out_size == 1


def test_fc_weights_and_macs():
    layer = FCLayer("fc", in_features=512, out_features=1000)
    assert layer.weights == 512_000
    assert layer.macs == 512_000


def test_fc_rejects_zero_features():
    with pytest.raises(ConfigurationError):
        FCLayer("bad", in_features=0, out_features=10)


def test_pool_has_no_weights():
    pool = PoolLayer("p", channels=64, kernel=3, stride=2, in_size=112,
                     padding=1)
    assert pool.weights == 0


def test_pool_out_size():
    pool = PoolLayer("p", channels=64, kernel=3, stride=2, in_size=112,
                     padding=1)
    assert pool.out_size == 56


def test_pool_macs_counts_window_ops():
    pool = PoolLayer("p", channels=16, kernel=2, stride=2, in_size=4)
    assert pool.macs == 16 * 2 * 2 * 4


def test_pool_channels_preserved():
    pool = PoolLayer("p", channels=96, kernel=3, stride=2, in_size=55)
    assert pool.in_channels == pool.out_channels == 96


def test_weight_bits_uses_precision(conv):
    assert weight_bits(conv, 8) == conv.weights * 8
    assert weight_bits(conv, 4) == conv.weights * 4


def test_arithmetic_intensity(conv):
    assert arithmetic_intensity(conv, 8) == pytest.approx(
        conv.macs / (conv.weights * 8))


def test_arithmetic_intensity_infinite_for_pool():
    pool = PoolLayer("p", channels=16, kernel=2, stride=2, in_size=4)
    assert math.isinf(arithmetic_intensity(pool))


def test_conv3x3_intensity_higher_than_1x1():
    """3x3 convs reuse each weight over the feature map like 1x1s, so
    intensity per weight-bit is equal at equal OX*OY; bigger maps win."""
    big = ConvLayer("big", 64, 64, kernel=3, stride=1, in_size=56, padding=1)
    small = ConvLayer("small", 64, 64, kernel=3, stride=1, in_size=7,
                      padding=1)
    assert arithmetic_intensity(big) > arithmetic_intensity(small)
