"""The staged physical flow: FlowSpec, caching, feasibility, equivalence.

Pins the four tentpole guarantees of the staged pipeline:

* the legacy ``run_flow`` (and the experiments built on it) is
  bit-identical through the staged core, including its historical
  timing-failure exception under ``strict=True``;
* every stage is independently cached — editing one ``FlowSpec`` knob
  re-runs exactly the stages downstream of it, proven by the engine's
  per-stage ``RunReport`` counters;
* infeasible design points are structured :class:`FlowOutcome` results,
  never exceptions, and physical-aware sweeps keep them out of the
  Pareto frontier while still reporting them;
* floorplan legalization preserves the geometric invariants (on-die,
  overlap-free per tier) across capacities and aspect ratios.
"""

import math
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.physical import run_flow, run_staged_flow, run_staged_flows
from repro.physical.floorplan import build_floorplan
from repro.physical.netlist import synthesize
from repro.physical.placement import legalize_floorplan
from repro.runtime.engine import EvaluationEngine
from repro.spec import DesignSpec, FlowSpec, evaluate_spec
from repro.spec.design import ArchSpec
from repro.spec.resolve import resolve
from repro.spec.sweep import SweepSpec
from repro.sweep.pareto import ParetoFrontier
from repro.sweep.stream import run_streaming_sweep
from repro.units import MEGABYTE

#: The FlowSpec matching what the legacy ``run_flow`` pipeline ran.
LEGACY_FLOW = FlowSpec(clock=False, congestion=False, thermal=False)


# --- FlowSpec section ------------------------------------------------------


def test_flow_spec_round_trips_through_json():
    spec = DesignSpec(flow=FlowSpec(frequency_mhz=50.0, aspect_ratio=1.2,
                                    thermal=False, max_power_density=1e4))
    assert DesignSpec.from_json(spec.to_json()) == spec
    assert DesignSpec.from_jsonable(spec.to_jsonable()) == spec


def test_flow_spec_defaults_do_not_change_spec_identity():
    explicit = DesignSpec(flow=FlowSpec())
    assert explicit == DesignSpec()
    assert explicit.to_json() == DesignSpec().to_json()


@pytest.mark.parametrize("bad", [
    {"activity_cs": 1.5},
    {"activity_bus": -0.1},
    {"frequency_mhz": 0.0},
    {"aspect_ratio": -1.0},
    {"thermal_grid": 2},
    {"max_rise_k": 0.0},
    {"max_power_density": -5.0},
    {"legalize": "yes"},
])
def test_flow_spec_validates_fields(bad):
    with pytest.raises(ConfigurationError):
        FlowSpec(**bad)


def test_flow_spec_frequency_hz():
    assert FlowSpec().frequency_hz is None
    assert FlowSpec(frequency_mhz=20.0).frequency_hz == 20e6


def test_flow_fields_are_sweepable_axes():
    sweep = SweepSpec(grid={"flow.aspect_ratio": [1.0, 1.5]})
    ratios = [spec.flow.aspect_ratio for spec in sweep.expand()]
    assert ratios == [1.0, 1.5]


# --- legacy equivalence (strict path) --------------------------------------


def test_staged_flow_matches_legacy_run_flow(pdk, baseline, m3d):
    for design in (baseline, m3d):
        legacy = run_flow(design, pdk)
        outcome = run_staged_flow(design, pdk, flow=LEGACY_FLOW, strict=True)
        assert outcome.as_result() == legacy


def test_extra_stages_leave_legacy_artifacts_identical(pdk, m3d):
    """Clock/congestion/thermal are new outputs, not perturbations."""
    legacy = run_flow(m3d, pdk)
    outcome = run_staged_flow(m3d, pdk, flow=FlowSpec(), strict=True)
    assert outcome.as_result() == legacy
    assert outcome.clock is not None
    assert outcome.congestion is not None
    assert outcome.thermal is not None


def test_engine_dispatch_matches_direct_execution(pdk, baseline, m3d):
    direct = run_staged_flows((baseline, m3d), pdk, flow=FlowSpec())
    engined = run_staged_flows((baseline, m3d), pdk, flow=FlowSpec(),
                               engine=EvaluationEngine(jobs=1))
    assert direct == engined


def test_strict_timing_failure_keeps_legacy_exception(pdk, baseline):
    fast = replace(baseline, frequency_hz=10e9)
    with pytest.raises(ConfigurationError) as legacy:
        run_flow(fast, pdk)
    with pytest.raises(ConfigurationError) as staged:
        run_staged_flows((fast,), pdk, flow=LEGACY_FLOW, strict=True)
    assert str(staged.value) == str(legacy.value)
    assert "failed timing at 10000 MHz" in str(legacy.value)


def test_nonstrict_timing_failure_is_a_result(pdk, baseline):
    fast = replace(baseline, frequency_hz=10e9)
    outcome = run_staged_flow(fast, pdk, flow=LEGACY_FLOW)
    assert not outcome.feasible
    assert not outcome.feasibility.timing_met
    assert outcome.feasibility.timing_slack < 0
    assert outcome.feasibility.verdict == "timing"
    assert outcome.error is None          # the flow itself completed
    assert outcome.quality is not None


def test_flow_spec_frequency_overrides_design_target(pdk, baseline):
    outcome = run_staged_flow(baseline, pdk,
                              flow=FlowSpec(frequency_mhz=2000.0))
    assert not outcome.feasible
    ok = run_staged_flow(baseline, pdk, flow=FlowSpec(frequency_mhz=20.0))
    assert ok.feasible


def test_nonstrict_stage_error_becomes_outcome(monkeypatch, pdk, baseline):
    import repro.physical.flow as flow_mod

    def boom(design, pdk):
        raise ConfigurationError("synthetic synthesis failure")

    monkeypatch.setattr(flow_mod, "synthesize", boom)
    outcome = run_staged_flow(baseline, pdk)
    assert not outcome.feasible
    assert outcome.feasibility.failed_stage == "synthesize"
    assert outcome.feasibility.verdict == "failed:synthesize"
    assert "synthetic synthesis failure" in outcome.error
    assert outcome.netlist is None and outcome.quality is None
    with pytest.raises(ConfigurationError, match="synthetic"):
        run_staged_flow(baseline, pdk, strict=True)


# --- per-stage incremental caching -----------------------------------------


def _flow_counters(engine):
    return {stage.name: (stage.cache_hits, stage.evaluated)
            for stage in engine.report().stages
            if stage.name.startswith("flow.")}


def _run_with_knobs(pdk, design, cache_dir, flow):
    engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
    run_staged_flows((design,), pdk, flow=flow, engine=engine)
    return _flow_counters(engine)


def test_cold_run_evaluates_every_stage(pdk, m3d, tmp_path):
    counters = _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    assert len(counters) == 10
    assert all(counts == (0, 1) for counts in counters.values()), counters


def test_identical_rerun_hits_every_stage(pdk, m3d, tmp_path):
    _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    counters = _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    assert all(counts == (1, 0) for counts in counters.values()), counters


def test_floorplan_knob_invalidates_exactly_downstream(pdk, m3d, tmp_path):
    _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    counters = _run_with_knobs(pdk, m3d, tmp_path,
                               FlowSpec(aspect_ratio=1.21))
    assert counters["flow.synthesize"] == (1, 0)     # upstream: warm
    downstream = {name: counts for name, counts in counters.items()
                  if name != "flow.synthesize"}
    assert all(counts == (0, 1) for counts in downstream.values()), counters


def test_thermal_knob_invalidates_only_thermal(pdk, m3d, tmp_path):
    _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    counters = _run_with_knobs(pdk, m3d, tmp_path, FlowSpec(thermal_grid=32))
    assert counters["flow.thermal"] == (0, 1)
    untouched = {name: counts for name, counts in counters.items()
                 if name != "flow.thermal"}
    assert all(counts == (1, 0) for counts in untouched.values()), counters


def test_activity_knob_invalidates_power_and_thermal(pdk, m3d, tmp_path):
    _run_with_knobs(pdk, m3d, tmp_path, FlowSpec())
    counters = _run_with_knobs(pdk, m3d, tmp_path, FlowSpec(activity_cs=0.5))
    assert counters["flow.power"] == (0, 1)
    assert counters["flow.thermal"] == (0, 1)        # consumes the power
    untouched = {name: counts for name, counts in counters.items()
                 if name not in ("flow.power", "flow.thermal")}
    assert all(counts == (1, 0) for counts in untouched.values()), counters


# --- spec-level physical evaluation ----------------------------------------


def test_evaluate_spec_physical_summary(pdk):
    evaluation = evaluate_spec(DesignSpec(), pdk, physical=True)
    physical = evaluation.physical
    assert physical is not None
    assert physical.feasible and evaluation.is_feasible
    assert physical.verdict == "ok"
    assert physical.achieved_frequency > 0
    assert physical.total_power > 0
    assert 0 < physical.ilv_utilization < 1


def test_evaluate_spec_infeasible_point_does_not_raise(pdk):
    spec = DesignSpec(flow=FlowSpec(frequency_mhz=2000.0))
    evaluation = evaluate_spec(spec, pdk, physical=True)
    assert not evaluation.is_feasible
    assert evaluation.physical.verdict == "timing"
    assert not evaluation.physical.timing_met


def test_evaluate_spec_without_physical_is_unchanged(pdk):
    evaluation = evaluate_spec(DesignSpec(), pdk)
    assert evaluation.physical is None
    assert evaluation.is_feasible


# --- feasibility-aware sweeps ----------------------------------------------


def _feasibility_sweep():
    return SweepSpec(grid={"arch.capacity_mb": [32, 64],
                           "flow.frequency_mhz": [20.0, 2000.0]})


def test_physical_sweep_reports_infeasible_points(pdk):
    result = run_streaming_sweep(_feasibility_sweep(), pdk, chunk_size=2,
                                 physical=True)
    assert result.points == len(result.evaluations) == 4
    assert result.infeasible == 2
    assert len(result.frontier) == 2
    assert all(ev.is_feasible for ev in result.frontier_evaluations())
    verdicts = sorted(ev.physical.verdict for ev in result.evaluations)
    assert verdicts == ["ok", "ok", "timing", "timing"]


def test_physical_sweep_resumes_from_checkpoints(pdk, tmp_path):
    sweep = _feasibility_sweep()
    first = run_streaming_sweep(sweep, pdk, chunk_size=2, physical=True,
                                checkpoint=tmp_path)
    second = run_streaming_sweep(sweep, pdk, chunk_size=2, physical=True,
                                 checkpoint=tmp_path)
    assert second.resumed_chunks == second.chunks == 2
    assert second.evaluations == first.evaluations
    assert second.infeasible == first.infeasible == 2


def test_physical_and_plain_checkpoints_never_collide(pdk, tmp_path):
    sweep = _feasibility_sweep()
    run_streaming_sweep(sweep, pdk, chunk_size=2, physical=True,
                        checkpoint=tmp_path)
    plain = run_streaming_sweep(sweep, pdk, chunk_size=2,
                                checkpoint=tmp_path)
    assert plain.resumed_chunks == 0
    assert plain.infeasible == 0


def test_frontier_rejects_and_counts_infeasible_offers():
    frontier = ParetoFrontier()
    assert frontier.add(1.0, 1.0, "feasible")
    assert not frontier.add(0.5, 2.0, "infeasible", feasible=False)
    assert len(frontier) == 1
    assert frontier.infeasible == 1
    assert frontier.items() == ("feasible",)


# --- thermal stage shares the core constants --------------------------------


def test_thermal_stage_matches_spatial_solver(pdk, m3d):
    pytest.importorskip("numpy")
    from repro.core.thermal import ThermalStack, vertical_conductance
    from repro.physical.thermal_map import solve_thermal_map

    stack = ThermalStack()
    assert vertical_conductance(1.0, stack) \
        == pytest.approx(1.0 / stack.r_ambient)
    outcome = run_staged_flow(m3d, pdk, flow=FlowSpec())
    solved = solve_thermal_map(outcome.floorplan, outcome.power)
    assert outcome.thermal.hotspot_rise_k == solved.hotspot
    assert outcome.thermal.average_rise_k == solved.average
    assert outcome.thermal.budget_k == stack.max_rise
    assert outcome.thermal.spatial


# --- floorplan legalization invariants -------------------------------------


def _legal_floorplan(capacity_mb: int, aspect_ratio: float):
    point = resolve(DesignSpec(
        arch=ArchSpec(capacity_bits=capacity_mb * MEGABYTE)))
    netlist = synthesize(point.m3d, point.pdk)
    floorplan = build_floorplan(netlist, point.m3d, point.pdk, aspect_ratio)
    return legalize_floorplan(floorplan, netlist)


@settings(max_examples=10, deadline=None)
@given(capacity_mb=st.sampled_from([16, 32, 64, 128]),
       aspect_ratio=st.floats(min_value=0.85, max_value=1.2))
def test_legalized_floorplan_stays_on_die_without_overlap(
        capacity_mb, aspect_ratio):
    floorplan = _legal_floorplan(capacity_mb, aspect_ratio)
    for placed in floorplan.placements:
        assert floorplan.die.contains(placed.rect), placed.name
    for tier in ("si_cmos", "rram", "cnfet"):
        blocks = floorplan.on_tier(tier)
        for i, a in enumerate(blocks):
            for b in blocks[i + 1:]:
                assert not a.rect.overlaps(b.rect), (tier, a.name, b.name)


@settings(max_examples=5, deadline=None)
@given(aspect_ratio=st.floats(min_value=0.85, max_value=1.2))
def test_footprint_is_monotone_in_capacity(aspect_ratio):
    footprints = [_legal_floorplan(mb, aspect_ratio).footprint
                  for mb in (16, 32, 64, 128)]
    assert footprints == sorted(footprints)
    assert footprints[0] < footprints[-1]


def test_aspect_ratio_one_is_bit_identical_to_legacy(pdk, m3d):
    netlist = synthesize(m3d, pdk)
    assert build_floorplan(netlist, m3d, pdk, 1.0) \
        == build_floorplan(netlist, m3d, pdk)


def test_aspect_ratio_shapes_the_die(pdk, m3d):
    netlist = synthesize(m3d, pdk)
    wide = build_floorplan(netlist, m3d, pdk, 1.44)
    square = build_floorplan(netlist, m3d, pdk, 1.0)
    assert wide.die.width > square.die.width
    assert math.isclose(wide.footprint, square.footprint, rel_tol=1e-9)
