"""Joint DSE, RRAM array internals, and the gate-level placer."""

import pytest

from repro.errors import ConfigurationError
from repro.core.dse import (
    DesignCandidate,
    evaluate_design_point,
    explore,
    pareto_frontier,
)
from repro.physical.cellplace import (
    CellNet,
    CellNetlist,
    clustered_netlist,
    clustered_placement,
    refine_by_swaps,
    scattered_placement,
)
from repro.tech.array_internals import (
    MatGeometry,
    BankOrganization,
    optimal_mat_rows,
    organize_bank,
)
from repro.units import MEGABYTE
from repro.workloads.models import resnet18


# --- joint DSE ---------------------------------------------------------------------

@pytest.fixture(scope="module")
def candidates(pdk):
    return explore(pdk, resnet18())


def test_grid_is_full_factorial(candidates):
    assert len(candidates) == 3 * 3 * 2 * 2


def test_case_study_point_in_grid(candidates):
    point = next(c for c in candidates
                 if c.capacity_bits == 64 * MEGABYTE and c.delta == 1.0
                 and c.beta == 1.0 and c.tier_pairs == 1)
    assert point.n_cs == 8
    assert point.edp_benefit == pytest.approx(5.66, rel=0.05)


def test_relaxed_knobs_do_not_help(candidates):
    """delta/beta are tolerances, not improvements: the best EDP at every
    (capacity, Y) is at the nominal delta = beta = 1."""
    for capacity in (32 * MEGABYTE, 64 * MEGABYTE, 128 * MEGABYTE):
        for pairs in (1, 2):
            group = [c for c in candidates
                     if c.capacity_bits == capacity and c.tier_pairs == pairs]
            best = max(group, key=lambda c: c.edp_benefit)
            nominal = next(c for c in group
                           if c.delta == 1.0 and c.beta == 1.0)
            assert nominal.edp_benefit >= best.edp_benefit * (1 - 1e-9)


def test_frontier_nondominated(candidates):
    frontier = pareto_frontier(candidates)
    for point in frontier:
        assert not any(other.dominates(point) for other in candidates)


def test_frontier_sorted_and_monotone(candidates):
    frontier = pareto_frontier(candidates)
    footprints = [c.footprint for c in frontier]
    benefits = [c.edp_benefit for c in frontier]
    assert footprints == sorted(footprints)
    # Along the frontier, paying footprint must buy benefit.
    assert benefits == sorted(benefits)


def test_dominates_semantics():
    small = DesignCandidate(1, 1.0, 1.0, 1, 8, 1, footprint=1.0,
                            speedup=5.0, edp_benefit=5.0)
    better = DesignCandidate(1, 1.0, 1.0, 1, 8, 1, footprint=1.0,
                             speedup=6.0, edp_benefit=6.0)
    bigger = DesignCandidate(1, 1.0, 1.0, 1, 8, 1, footprint=2.0,
                             speedup=6.0, edp_benefit=6.0)
    assert better.dominates(small)
    assert not small.dominates(better)
    assert not bigger.dominates(better)
    assert not better.dominates(better)


def test_evaluate_design_point_grows_footprint_with_delta(pdk):
    net = resnet18()
    nominal = evaluate_design_point(pdk, net, 64 * MEGABYTE, delta=1.0)
    relaxed = evaluate_design_point(pdk, net, 64 * MEGABYTE, delta=2.5)
    assert relaxed.footprint > nominal.footprint
    assert relaxed.n_cs_2d > 1


def test_empty_frontier_rejected():
    with pytest.raises(ConfigurationError):
        pareto_frontier([])


def _candidate(footprint, edp_benefit, capacity_bits=1):
    return DesignCandidate(capacity_bits, 1.0, 1.0, 1, 8, 1,
                           footprint=footprint, speedup=1.0,
                           edp_benefit=edp_benefit)


def test_frontier_single_candidate_is_itself():
    only = _candidate(2.0, 3.0)
    assert pareto_frontier([only]) == (only,)


def test_frontier_keeps_exact_duplicates():
    """Two identical points don't dominate each other (no strict edge),
    so both survive — callers see the true multiplicity of the grid."""
    a = _candidate(1.0, 5.0)
    b = _candidate(1.0, 5.0, capacity_bits=2)  # equal axes, distinct point
    frontier = pareto_frontier([a, b])
    assert len(frontier) == 2
    assert set(frontier) == {a, b}


def test_frontier_one_axis_tie_keeps_only_the_better_point():
    """Equal footprint, different benefit: the better point dominates."""
    worse = _candidate(1.0, 5.0)
    better = _candidate(1.0, 6.0)
    assert pareto_frontier([worse, better]) == (better,)
    # Same footprint axis flipped: equal benefit, smaller footprint wins.
    small = _candidate(1.0, 5.0)
    large = _candidate(2.0, 5.0)
    assert pareto_frontier([small, large]) == (small,)


def test_frontier_dominated_interior_point_dropped():
    corner_a = _candidate(1.0, 1.0)
    corner_b = _candidate(3.0, 9.0)
    interior = _candidate(2.0, 0.5)  # bigger than a, worse than both
    assert pareto_frontier([corner_a, interior, corner_b]) == \
        (corner_a, corner_b)


# --- array internals --------------------------------------------------------------------

def test_case_study_bank_reads_in_one_cycle():
    """The chip model's 256-bit-per-cycle bank read closes at 20 MHz."""
    bank = organize_bank(int(8 * MEGABYTE), 20e6)
    assert bank.read_latency_cycles(20e6) == 1


def test_access_time_components_positive():
    mat = MatGeometry(rows=512, cols=256)
    assert 0 < mat.wordline_delay() < mat.access_time()
    assert 0 < mat.bitline_delay() < mat.access_time()


def test_access_time_grows_with_mat():
    small = MatGeometry(rows=256, cols=256)
    large = MatGeometry(rows=4096, cols=256)
    assert large.access_time() > small.access_time()


def test_bitline_delay_quadratic_in_rows():
    d1 = MatGeometry(rows=1024, cols=256).bitline_delay()
    d2 = MatGeometry(rows=2048, cols=256).bitline_delay()
    assert d2 == pytest.approx(4 * d1)


def test_optimal_rows_shrink_with_frequency():
    assert optimal_mat_rows(200e6) < optimal_mat_rows(20e6)


def test_optimal_rows_meet_budget():
    rows = optimal_mat_rows(100e6)
    assert MatGeometry(rows=rows, cols=256).meets_cycle(100e6)
    assert not MatGeometry(rows=rows * 2, cols=256).meets_cycle(100e6)


def test_bank_mat_count():
    bank = BankOrganization(capacity_bits=2 ** 20,
                            mat=MatGeometry(rows=1024, cols=256))
    assert bank.mat_count == 4


def test_bank_must_hold_a_mat():
    with pytest.raises(ConfigurationError):
        BankOrganization(capacity_bits=100,
                         mat=MatGeometry(rows=1024, cols=256))


# --- cell placement ------------------------------------------------------------------------

@pytest.fixture(scope="module")
def netlist():
    return clustered_netlist()


def test_netlist_shape(netlist):
    assert netlist.cell_count == 256
    assert len(netlist.nets) == 16 * 24 + 48


def test_netlist_deterministic():
    assert clustered_netlist() == clustered_netlist()


def test_net_validation():
    with pytest.raises(ConfigurationError):
        CellNetlist(cell_count=2, nets=(CellNet(cells=(0, 5)),))


def test_placements_legal(netlist):
    scattered_placement(netlist).validate()
    clustered_placement(netlist, 16).validate()


def test_clustered_beats_scattered(netlist):
    """Placing clusters contiguously exploits the locality in the netlist."""
    scattered = scattered_placement(netlist)
    clustered = clustered_placement(netlist, 16)
    assert clustered.hpwl() < 0.5 * scattered.hpwl()


def test_refinement_improves_scattered(netlist):
    scattered = scattered_placement(netlist)
    refined = refine_by_swaps(scattered, passes=3)
    assert refined.hpwl() < scattered.hpwl()
    refined.validate()


def test_refinement_never_worsens(netlist):
    start = clustered_placement(netlist, 16)
    refined = refine_by_swaps(start, passes=1)
    assert refined.hpwl() <= start.hpwl()


def test_average_net_length_matches_rent_scale(netlist):
    """The placed average net length stays within the short-local-wire
    regime the flow's Rent estimate assumes (a few site pitches)."""
    placed = refine_by_swaps(clustered_placement(netlist, 16), passes=2)
    assert placed.average_net_length() < 8.0
