"""Loop-nest representation and operand footprints."""

import pytest

from repro.errors import ConfigurationError
from repro.mapper.loopnest import (
    RELEVANT_DIMS,
    LoopNest,
    OperandKind,
    loop_nest_of,
)
from repro.workloads.layers import ConvLayer, FCLayer, PoolLayer
from repro.workloads.models import resnet18


@pytest.fixture
def nest():
    return LoopNest(k=128, c=64, ox=28, oy=28, r=3, s=3)


def test_macs(nest):
    assert nest.macs == 128 * 64 * 28 * 28 * 9


def test_weight_size(nest):
    assert nest.operand_size(OperandKind.WEIGHT) == 128 * 64 * 9


def test_output_size(nest):
    assert nest.operand_size(OperandKind.OUTPUT) == 128 * 28 * 28


def test_input_size_includes_halo(nest):
    assert nest.operand_size(OperandKind.INPUT) == 64 * 30 * 30


def test_input_size_with_stride():
    nest = LoopNest(k=128, c=64, ox=28, oy=28, r=3, s=3, stride=2)
    # (28-1)*2 + 3 = 57 per side
    assert nest.operand_size(OperandKind.INPUT) == 64 * 57 * 57


def test_tile_weight_size(nest):
    tile = {"k": 32, "c": 16}
    assert nest.tile_operand_size(OperandKind.WEIGHT, tile) == 32 * 16 * 9


def test_tile_input_size(nest):
    tile = {"c": 16, "oy": 7}
    # rows: (7-1)*1 + 3 = 9; cols full: 30
    assert nest.tile_operand_size(OperandKind.INPUT, tile) == 16 * 30 * 9


def test_tile_defaults_to_full_bounds(nest):
    assert nest.tile_operand_size(OperandKind.OUTPUT, {}) == \
        nest.operand_size(OperandKind.OUTPUT)


def test_loop_nest_of_conv():
    layer = resnet18().layer("L2.0 CONV2")
    nest = loop_nest_of(layer)
    assert (nest.k, nest.c, nest.ox, nest.oy) == (128, 128, 28, 28)
    assert nest.macs == layer.macs


def test_loop_nest_of_strided_conv():
    layer = resnet18().layer("L2.0 DS")
    nest = loop_nest_of(layer)
    assert nest.stride == 2
    assert nest.r == nest.s == 1


def test_loop_nest_of_fc():
    nest = loop_nest_of(FCLayer("fc", in_features=512, out_features=1000))
    assert (nest.k, nest.c, nest.ox, nest.oy, nest.r, nest.s) \
        == (1000, 512, 1, 1, 1, 1)


def test_loop_nest_of_pool_rejected():
    pool = PoolLayer("p", channels=8, kernel=2, stride=2, in_size=4)
    with pytest.raises(ConfigurationError):
        loop_nest_of(pool)


def test_relevance_sets():
    assert "ox" not in RELEVANT_DIMS[OperandKind.WEIGHT]
    assert "k" not in RELEVANT_DIMS[OperandKind.INPUT]
    assert "c" not in RELEVANT_DIMS[OperandKind.OUTPUT]
    assert "k" in RELEVANT_DIMS[OperandKind.OUTPUT]


def test_dim_lookup(nest):
    assert nest.dim("k") == 128
    assert nest.dim("oy") == 28


def test_invalid_nest_rejected():
    with pytest.raises(ConfigurationError):
        LoopNest(k=0, c=1, ox=1, oy=1, r=1, s=1)
