"""Benefit comparison — including the paper's Table I / Fig. 5 claims."""

import pytest

from repro.errors import ConfigurationError
from repro.perf import compare_designs, simulate
from repro.workloads import alexnet, resnet18


def test_speedup_matches_paper_total(resnet18_benefit):
    """Paper Table I total speedup: 5.64x (we allow +-5%)."""
    assert resnet18_benefit.speedup == pytest.approx(5.64, rel=0.05)


def test_energy_benefit_near_unity(resnet18_benefit):
    """Paper: 0.99x energy — M3D spends essentially the same energy."""
    assert 0.95 <= resnet18_benefit.energy_benefit <= 1.05


def test_edp_benefit_matches_paper_total(resnet18_benefit):
    """Paper Table I total EDP benefit: 5.66x (we allow +-5%)."""
    assert resnet18_benefit.edp_benefit == pytest.approx(5.66, rel=0.05)


@pytest.mark.parametrize("layer_name,paper_speedup,tolerance", [
    ("L1.0 CONV1", 3.72, 0.03),
    ("L1.1 CONV2", 3.72, 0.03),
    ("L2.0 CONV2", 7.36, 0.03),
    ("L2.1 CONV1", 7.36, 0.03),
    ("L3.0 CONV2", 7.68, 0.03),
    ("L4.0 CONV2", 7.85, 0.03),
    ("L4.1 CONV2", 7.85, 0.03),
    ("L2.0 CONV1", 6.00, 0.15),
    ("L3.0 CONV1", 6.84, 0.10),
])
def test_per_layer_speedups_match_table1(resnet18_benefit, layer_name,
                                         paper_speedup, tolerance):
    """The per-layer speedups of Table I, at per-row tolerances."""
    measured = resnet18_benefit.layer(layer_name).speedup
    assert measured == pytest.approx(paper_speedup, rel=tolerance)


def test_downsample_layers_benefit_least(resnet18_benefit):
    """DS (1x1, stride-2) rows show the smallest conv speedups in Table I."""
    ds = resnet18_benefit.layer("L2.0 DS").speedup
    conv = resnet18_benefit.layer("L2.0 CONV2").speedup
    assert ds < conv


def test_stage1_limited_by_partitions(resnet18_benefit):
    """64-channel layers use only 4 of 8 CSs -> speedup < 4."""
    assert resnet18_benefit.layer("L1.0 CONV1").speedup < 4.0


def test_stage4_approaches_8x(resnet18_benefit):
    speedup = resnet18_benefit.layer("L4.1 CONV2").speedup
    assert 7.5 < speedup < 8.0


def test_per_layer_edp_is_product(resnet18_benefit):
    for layer in resnet18_benefit.layers:
        assert layer.edp_benefit == pytest.approx(
            layer.speedup * layer.energy_benefit)


def test_network_edp_is_product(resnet18_benefit):
    assert resnet18_benefit.edp_benefit == pytest.approx(
        resnet18_benefit.speedup * resnet18_benefit.energy_benefit)


def test_mismatched_networks_rejected(pdk, baseline, m3d):
    with pytest.raises(ConfigurationError):
        compare_designs(
            simulate(baseline, resnet18(), pdk),
            simulate(m3d, alexnet(), pdk),
        )


def test_layer_lookup_unknown_raises(resnet18_benefit):
    with pytest.raises(KeyError):
        resnet18_benefit.layer("L7.3 CONV9")


def test_self_comparison_is_unity(pdk, baseline, resnet18_network):
    report = simulate(baseline, resnet18_network, pdk)
    benefit = compare_designs(report, report)
    assert benefit.speedup == pytest.approx(1.0)
    assert benefit.edp_benefit == pytest.approx(1.0)
