"""Golden-value regression suite for the paper's headline numbers.

Every value here was frozen from the seed implementation *before* the
evaluation runtime (``repro.runtime``) was wired into the sweeps, so any
refactor of the execution machinery — parallelism, memoization, caching —
that silently drifts a result fails loudly.  Tolerances are tight
(``REL = 1e-9``): the pipeline is pure float arithmetic and must stay
bit-stable; only a deliberate model change may update these constants.

Pinned artifacts:

* Fig. 2 case study — 1 -> 8 CSs at iso footprint/capacity (paper Sec. II).
* Table I — all per-layer ResNet-18 rows and the 5.67x EDP total
  (paper: 5.66x; the conv-layer EDP spread covers the 5.7-7.5x headline).
* Fig. 9 — capacity sweep endpoints (1x @ 12 MB -> 6.85x @ 128 MB;
  paper: 6.8x).
* Fig. 10c / Obs. 8 / Fig. 10d — single-knob sweep endpoints.
"""

from __future__ import annotations

import pytest

from repro.experiments.casestudy import run_case_study
from repro.experiments.fig9 import run_fig9
from repro.experiments.fig10 import run_fig10c, run_fig10d, run_obs8
from repro.experiments.table1 import run_table1

#: Relative tolerance for frozen floats (pure arithmetic, no solver noise).
REL = 1e-9

#: Frozen Table I rows: name -> (speedup, energy benefit, EDP benefit).
GOLDEN_TABLE1: dict[str, tuple[float, float, float]] = {
    "CONV1+POOL": (3.295302013422819, 0.9875476477813677, 3.25426775208491),
    "L1.0 CONV1": (3.7027300303336705, 1.0011373113593975, 3.7069411872579514),
    "L1.0 CONV2": (3.7027300303336705, 1.0011373113593975, 3.7069411872579514),
    "L1.1 CONV1": (3.7027300303336705, 1.0011373113593975, 3.7069411872579514),
    "L1.1 CONV2": (3.7027300303336705, 1.0011373113593975, 3.7069411872579514),
    "L2.0 DS": (3.3959731543624163, 0.9728216002786556, 3.3036760385301998),
    "L2.0 CONV1": (6.768402154398563, 1.009478447009852, 6.832556095560397),
    "L2.0 CONV2": (7.324803149606299, 1.0119616394740465, 7.41241980410025),
    "L2.1 CONV1": (7.324803149606299, 1.0119616394740465, 7.41241980410025),
    "L2.1 CONV2": (7.324803149606299, 1.0119616394740465, 7.41241980410025),
    "L3.0 DS": (4.764150943396227, 0.9945446081556532, 4.7381606331943855),
    "L3.0 CONV1": (7.389679715302491, 1.0132540756293351, 7.487623089125674),
    "L3.0 CONV2": (7.68093023255814, 1.01447112356004, 7.792081923009536),
    "L3.1 CONV1": (7.68093023255814, 1.01447112356004, 7.792081923009536),
    "L3.1 CONV2": (7.68093023255814, 1.01447112356004, 7.792081923009536),
    "L4.0 DS": (6.374407582938389, 1.0101852100849926, 6.439332263337986),
    "L4.0 CONV1": (7.772395487723955, 1.0188422135501622, 7.918844623299967),
    "L4.0 CONV2": (7.884317032040472, 1.0193931600571517, 8.037218854184161),
    "L4.1 CONV1": (7.884317032040472, 1.0193931600571517, 8.037218854184161),
    "L4.1 CONV2": (7.884317032040472, 1.0193931600571517, 8.037218854184161),
    "Total": (5.61835247129306, 1.0097090766661299, 5.672901486174185),
}


@pytest.fixture(scope="module")
def case_study(pdk):
    return run_case_study(pdk)


@pytest.fixture(scope="module")
def table1_rows(pdk):
    return run_table1(pdk)


class TestFig2CaseStudy:
    def test_cs_counts(self, case_study):
        assert case_study.baseline.design.n_cs == 1
        assert case_study.m3d.design.n_cs == 8

    def test_iso_constraints(self, case_study):
        assert case_study.iso_footprint
        assert case_study.iso_capacity

    def test_footprint(self, case_study):
        assert case_study.baseline.footprint == pytest.approx(
            0.0004817637168108001, rel=REL)

    def test_obs2_power(self, case_study):
        assert case_study.peak_density_ratio == pytest.approx(
            1.0012171699435626, rel=REL)
        assert case_study.upper_tier_fraction == pytest.approx(
            0.006215085526519188, rel=REL)
        # Paper Obs. 2 bounds: <1% upper-tier power, ~+1% peak density.
        assert case_study.upper_tier_fraction < 0.01
        assert 1.0 < case_study.peak_density_ratio < 1.02


class TestTable1:
    def test_row_names_match_golden(self, table1_rows):
        assert [row.name for row in table1_rows] == list(GOLDEN_TABLE1)

    @pytest.mark.parametrize("name", list(GOLDEN_TABLE1))
    def test_row_values(self, table1_rows, name):
        row = next(r for r in table1_rows if r.name == name)
        speedup, energy, edp = GOLDEN_TABLE1[name]
        assert row.speedup == pytest.approx(speedup, rel=REL)
        assert row.energy_benefit == pytest.approx(energy, rel=REL)
        assert row.edp_benefit == pytest.approx(edp, rel=REL)

    def test_total_matches_paper_headline(self, table1_rows):
        # Paper Table I total: 5.64x / 0.99x / 5.66x; ours lands within 2%.
        total = table1_rows[-1]
        assert total.speedup == pytest.approx(5.64, rel=0.02)
        assert total.edp_benefit == pytest.approx(5.66, rel=0.02)

    def test_stage4_conv_spread_covers_headline_range(self, table1_rows):
        # The 5.7-7.5x headline range of conv-layer EDP benefits.
        edps = [r.edp_benefit for r in table1_rows
                if r.name.endswith(("CONV1", "CONV2")) and r.name != "CONV1+POOL"]
        assert min(edps) > 3.0
        assert max(edps) == pytest.approx(8.037218854184161, rel=REL)


class TestFig9Endpoints:
    def test_sweep(self, pdk):
        points = run_fig9(pdk)
        first, last = points[0], points[-1]
        assert (first.capacity_bits, first.n_cs) == (100663296, 1)
        assert first.speedup == pytest.approx(1.0, rel=REL)
        assert first.edp_benefit == pytest.approx(1.0, rel=REL)
        assert (last.capacity_bits, last.n_cs) == (1073741824, 16)
        assert last.speedup == pytest.approx(6.849705735189993, rel=REL)
        assert last.edp_benefit == pytest.approx(6.852184823596777, rel=REL)
        # Obs. 6: the benefit grows monotonically with capacity.
        edps = [p.edp_benefit for p in points]
        assert edps == sorted(edps)


class TestFig10Endpoints:
    def test_fig10c_fet_width(self, pdk):
        results = run_fig10c(pdk)
        first, last = results[0], results[-1]
        assert (first.delta, first.n_cs_2d, first.n_cs_m3d) == (1.0, 1, 8)
        assert first.speedup == pytest.approx(5.630007688198693, rel=REL)
        assert first.edp_benefit == pytest.approx(5.685221320948279, rel=REL)
        assert (last.delta, last.n_cs_2d, last.n_cs_m3d) == (3.0, 12, 20)
        assert last.edp_benefit == pytest.approx(1.1859212568861623, rel=REL)

    def test_obs8_via_pitch(self, pdk):
        results = run_obs8(pdk)
        first, last = results[0], results[-1]
        assert (first.beta, first.n_cs_2d, first.n_cs_m3d) == (1.0, 1, 8)
        assert first.edp_benefit == pytest.approx(5.685221320948279, rel=REL)
        assert last.beta == 2.0
        assert last.effective_delta == pytest.approx(
            3.7636423405654185, rel=REL)
        assert (last.n_cs_2d, last.n_cs_m3d) == (18, 26)
        assert last.edp_benefit == pytest.approx(1.0987762235678598, rel=REL)

    def test_fig10d_tier_pairs(self, pdk):
        result = run_fig10d(pdk)
        net_first = result.network_sweep[0]
        net_last = result.network_sweep[-1]
        assert (net_first.pairs, net_first.n_cs) == (1, 8)
        assert net_first.edp_benefit == pytest.approx(
            5.685221320948279, rel=REL)
        assert net_first.temperature_rise == pytest.approx(
            0.027120710783051706, rel=REL)
        assert (net_last.pairs, net_last.n_cs) == (6, 48)
        assert net_last.edp_benefit == pytest.approx(
            7.016232429737267, rel=REL)
        layer_last = result.parallel_layer_sweep[-1]
        assert layer_last.edp_benefit == pytest.approx(
            30.473399685570147, rel=REL)
