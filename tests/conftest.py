"""Shared fixtures.

Session-scoped where construction is pure and reused heavily (the PDK and
the case-study design pair) — everything exposed here is immutable
(frozen dataclasses), so sharing across tests is safe.
"""

from __future__ import annotations

import pytest

from repro.tech import foundry_m3d_pdk
from repro.arch import baseline_2d_design, m3d_design
from repro.perf import compare_designs, simulate
from repro.workloads import resnet18


@pytest.fixture(scope="session")
def pdk():
    """The foundry M3D PDK stand-in."""
    return foundry_m3d_pdk()


@pytest.fixture(scope="session")
def baseline(pdk):
    """The Sec. II 2D baseline design (64 MB, 1 CS)."""
    return baseline_2d_design(pdk)


@pytest.fixture(scope="session")
def m3d(pdk):
    """The Sec. II iso-footprint M3D design (64 MB, 8 CSs)."""
    return m3d_design(pdk)


@pytest.fixture(scope="session")
def resnet18_network():
    """ResNet-18 (the Table I / Fig. 9 workload)."""
    return resnet18()


@pytest.fixture(scope="session")
def resnet18_benefit(pdk, baseline, m3d, resnet18_network):
    """The headline ResNet-18 2D-vs-M3D benefit comparison."""
    return compare_designs(
        simulate(baseline, resnet18_network, pdk),
        simulate(m3d, resnet18_network, pdk),
    )
