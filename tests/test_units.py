"""Unit constants and conversions."""

import pytest

from repro import units


def test_length_hierarchy():
    assert units.NM < units.UM < units.MM


def test_area_consistency():
    assert units.UM2 == pytest.approx(units.UM * units.UM)
    assert units.MM2 == pytest.approx(units.MM * units.MM)


def test_megabyte_is_bits():
    assert units.MEGABYTE == 8 * 1024 * 1024
    assert units.KILOBYTE == 8 * 1024
    assert units.BYTE == 8


def test_to_mm2_round_trip():
    assert units.to_mm2(3.5 * units.MM2) == pytest.approx(3.5)


def test_to_um2_round_trip():
    assert units.to_um2(12.0 * units.UM2) == pytest.approx(12.0)


def test_to_megabytes_round_trip():
    assert units.to_megabytes(64 * units.MEGABYTE) == pytest.approx(64.0)


def test_to_pj_round_trip():
    assert units.to_pj(2.0 * units.PJ) == pytest.approx(2.0)


def test_to_mw_round_trip():
    assert units.to_mw(5.0 * units.MW) == pytest.approx(5.0)


def test_to_mhz_round_trip():
    assert units.to_mhz(20 * units.MHZ) == pytest.approx(20.0)


def test_frequency_hierarchy():
    assert units.KHZ < units.MHZ < units.GHZ
