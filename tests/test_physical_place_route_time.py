"""Placement refinement, routing estimation, and static timing."""

import pytest

from repro.physical.floorplan import Floorplan, build_floorplan
from repro.physical.netlist import synthesize
from repro.physical.placement import (
    legalize_floorplan,
    placement_quality,
    total_hpwl,
)
from repro.physical.routing import intra_block_wirelength, route
from repro.physical.timing import analyze_timing, buffered_wire_delay


@pytest.fixture(scope="module")
def m3d_pair(pdk, m3d):
    netlist = synthesize(m3d, pdk)
    plan = build_floorplan(netlist, m3d, pdk)
    return netlist, plan


@pytest.fixture(scope="module")
def legalized(m3d_pair):
    netlist, plan = m3d_pair
    return legalize_floorplan(plan, netlist)


def test_legalization_keeps_plan_valid(legalized):
    legalized.validate()


def test_legalization_does_not_increase_hpwl(m3d_pair, legalized):
    netlist, plan = m3d_pair
    assert total_hpwl(legalized, netlist) <= total_hpwl(plan, netlist) + 1e-12


def test_legalization_fixes_scrambled_placement(m3d_pair):
    """Sorting CS slots under their banks shortens the weight channels:
    scramble the slot order, legalize, and the wirelength must recover."""
    from dataclasses import replace
    netlist, plan = m3d_pair
    # Swap the x extents of the cs0 and cs7 slots (including buffers).
    swaps = {"cs0": "cs7", "cs7": "cs0", "cs0_buf": "cs7_buf",
             "cs7_buf": "cs0_buf"}
    rects = {b.name: b.rect for b in plan.placements}
    scrambled = Floorplan(
        name=plan.name, die=plan.die, is_m3d=plan.is_m3d,
        placements=tuple(
            replace(b, rect=replace(rects[swaps[b.name]],
                                    width=b.rect.width))
            if b.name in swaps else b
            for b in plan.placements))
    # The swap may transiently overlap; legalization re-packs from scratch.
    healed = legalize_floorplan(scrambled, netlist)
    healed.validate()
    assert total_hpwl(healed, netlist) < total_hpwl(scrambled, netlist)


def test_placement_quality_metrics(m3d_pair):
    netlist, plan = m3d_pair
    quality = placement_quality(plan, netlist)
    assert quality["hpwl_metre_bits"] > 0
    assert 0 < quality["si_utilization"] <= 1.0
    assert quality["free_si_area"] >= 0


def test_routing_result_fields(m3d_pair):
    netlist, plan = m3d_pair
    result = route(plan, netlist)
    assert result.inter_block_wirelength > 0
    assert result.intra_block_wirelength > 0
    assert result.buffer_count > 0
    assert result.wire_capacitance > 0


def test_m3d_routing_uses_ilvs(m3d_pair):
    netlist, plan = m3d_pair
    result = route(plan, netlist)
    assert result.ilv_count > 0  # bank -> peripheral nets cross tiers


def test_2d_routing_also_crosses_to_rram(pdk, baseline):
    """2D bank->peripheral connections also count as tier crossings: the
    RRAM devices are BEOL in both designs."""
    netlist = synthesize(baseline, pdk)
    plan = build_floorplan(netlist, baseline, pdk)
    assert route(plan, netlist).ilv_count > 0


def test_intra_block_wirelength_grows_with_gates():
    small = intra_block_wirelength(1e4, 1e-6)
    large = intra_block_wirelength(1e6, 1e-4)
    assert large > small


def test_intra_block_wirelength_zero_for_single_gate():
    assert intra_block_wirelength(1, 1e-9) == 0.0


def test_buffered_wire_delay_monotone():
    assert buffered_wire_delay(10e-3) > buffered_wire_delay(1e-3)


def test_buffered_wire_delay_zero_length():
    assert buffered_wire_delay(0.0) == 0.0


def test_repeated_wire_beats_unrepeated_scaling():
    """Repeatered delay grows ~linearly, not quadratically."""
    d1 = buffered_wire_delay(5e-3)
    d2 = buffered_wire_delay(10e-3)
    assert d2 < 2.5 * d1


def test_timing_closes_at_20mhz(m3d_pair, pdk, m3d):
    netlist, plan = m3d_pair
    timing = analyze_timing(plan, netlist, pdk, m3d.frequency_hz)
    assert timing.meets_target
    assert timing.slack > 0


def test_achieved_frequency_inverse_of_path(m3d_pair, pdk, m3d):
    netlist, plan = m3d_pair
    timing = analyze_timing(plan, netlist, pdk, m3d.frequency_hz)
    assert timing.achieved_frequency == pytest.approx(
        1.0 / timing.critical_path)


def test_critical_path_components(m3d_pair, pdk, m3d):
    netlist, plan = m3d_pair
    timing = analyze_timing(plan, netlist, pdk, m3d.frequency_hz)
    assert timing.critical_path == pytest.approx(
        timing.logic_delay + timing.wire_delay)
    assert timing.logic_delay > 0
    assert timing.wire_delay > 0


def test_impossible_target_fails(m3d_pair, pdk):
    netlist, plan = m3d_pair
    timing = analyze_timing(plan, netlist, pdk, target_frequency=10e9)
    assert not timing.meets_target
    assert timing.slack < 0
