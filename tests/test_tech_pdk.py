"""The bundled PDK."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import foundry_m3d_pdk
from repro.tech.node import NODE_130NM
from repro.tech.stackup import TierKind


def test_pdk_node(pdk):
    assert pdk.node is NODE_130NM


def test_pdk_stacks_differ_on_cnfet_placement(pdk):
    assert pdk.stack.tier("cnfet").placeable
    assert not pdk.stack_2d.tier("cnfet").placeable


def test_pdk_libraries_match_tiers(pdk):
    assert pdk.silicon_library.tier_kind == TierKind.SILICON_LOGIC
    assert pdk.cnfet_library.tier_kind == TierKind.CNFET_LOGIC


def test_rram_bitcell_area_fet_limited(pdk):
    assert pdk.rram_bitcell_area == pytest.approx(36 * NODE_130NM.f2)


def test_m3d_cell_at_delta_one_is_iso(pdk):
    assert pdk.m3d_rram_cell(1.0).area(pdk.ilv) == pytest.approx(
        pdk.rram_cell.area(None))


def test_m3d_cell_grows_with_delta(pdk):
    base = pdk.m3d_rram_cell(1.0).area(pdk.ilv)
    assert pdk.m3d_rram_cell(2.0).area(pdk.ilv) == pytest.approx(2 * base)


def test_m3d_cell_rejects_delta_below_one(pdk):
    with pytest.raises(ConfigurationError):
        pdk.m3d_rram_cell(0.8)


def test_with_ilv_pitch_factor_scales_pitch(pdk):
    scaled = pdk.with_ilv_pitch_factor(1.3)
    assert scaled.ilv.pitch == pytest.approx(1.3 * pdk.ilv.pitch)
    # Original untouched (frozen dataclasses).
    assert scaled is not pdk


def test_via_pitch_binds_above_1p3(pdk):
    """The PDK is calibrated so the cell stays FET-limited to beta ~1.3."""
    cell = pdk.m3d_rram_cell(1.0)
    fine = pdk.with_ilv_pitch_factor(1.3)
    coarse = pdk.with_ilv_pitch_factor(1.4)
    assert cell.area(fine.ilv) == pytest.approx(cell.area(None), rel=0.01)
    assert cell.area(coarse.ilv) > cell.area(None) * 1.5


def test_sram_macro_area_includes_overhead(pdk):
    bits = 8 * 1024 * 8
    raw = bits * pdk.sram_bitcell_area
    assert pdk.sram_macro_area(bits) == pytest.approx(1.3 * raw)


def test_sram_macro_area_custom_overhead(pdk):
    bits = 1024
    assert pdk.sram_macro_area(bits, overhead=0.0) == pytest.approx(
        bits * pdk.sram_bitcell_area)


def test_sram_denser_than_rram_by_4x(pdk):
    """Our SRAM cell is ~4x the RRAM cell (the paper assumes >= 2x)."""
    ratio = pdk.sram_bitcell_area / pdk.rram_bitcell_area
    assert ratio > 2.0


def test_access_fets(pdk):
    assert not pdk.si_access_fet.beol_compatible
    assert pdk.cnfet_access_fet.beol_compatible


def test_pdk_with_stronger_cnfets():
    strong = foundry_m3d_pdk(cnfet_relative_drive=1.0)
    weak = foundry_m3d_pdk(cnfet_relative_drive=0.5)
    assert (strong.cnfet_access_fet.drive_current_per_width
            > weak.cnfet_access_fet.drive_current_per_width)
