"""Batched simulation, transformer workloads, and the silicon allocator."""

import pytest

from repro.errors import ConfigurationError
from repro.core.allocate import Allocation, optimize_freed_silicon
from repro.core.framework import Workload
from repro.core.insights import reference_design_point
from repro.experiments.ext_batching import run_batching
from repro.perf.simulator import AcceleratorSimulator, simulate
from repro.units import MEGABYTE
from repro.workloads.layers import FCLayer
from repro.workloads.models import Network
from repro.workloads.transformer import (
    base_encoder,
    tiny_encoder,
    transformer_encoder,
)


# --- transformer workloads ------------------------------------------------------

def test_tiny_encoder_parameter_count():
    # 4 layers x (4 * 512^2 + 2 * 512 * 2048) = ~12.6 M
    assert tiny_encoder().total_weights == 4 * (4 * 512 ** 2 + 2 * 512 * 2048)


def test_base_encoder_is_bert_base_class():
    assert base_encoder().total_weights == pytest.approx(85e6, rel=0.01)


def test_encoder_layer_naming():
    net = transformer_encoder(layers=2, d_model=64, d_ff=256)
    names = [layer.name for layer in net.layers]
    assert "L0.Q" in names and "L1.FFN2" in names
    assert len(names) == 12


def test_encoder_all_fc():
    for layer in tiny_encoder().layers:
        assert isinstance(layer, FCLayer)


def test_encoder_rejects_zero_layers():
    with pytest.raises(ConfigurationError):
        transformer_encoder(layers=0)


# --- batched simulation ------------------------------------------------------------

@pytest.fixture(scope="module")
def fc_net():
    return Network(name="fc", layers=(
        FCLayer("FC", in_features=512, out_features=512),))


def test_batch_one_matches_default(pdk, m3d, fc_net):
    default = simulate(m3d, fc_net, pdk)
    explicit = simulate(m3d, fc_net, pdk, batch=1)
    assert default.cycles == explicit.cycles
    assert default.energy == explicit.energy


def test_batching_amortizes_fill(pdk, m3d, fc_net):
    """Per-token cycles drop with the batch (slab setup amortized)."""
    one = simulate(m3d, fc_net, pdk, batch=1)
    many = simulate(m3d, fc_net, pdk, batch=64)
    assert many.cycles / 64 < one.cycles / 4


def test_batching_sublinear_cycles(pdk, m3d, fc_net):
    """Total cycles grow sublinearly in the batch."""
    one = simulate(m3d, fc_net, pdk, batch=1)
    many = simulate(m3d, fc_net, pdk, batch=16)
    assert one.cycles < many.cycles < 16 * one.cycles


def test_batching_weight_energy_constant(pdk, m3d, fc_net):
    """Weight-read energy does not scale with the batch (the point of
    keeping weights stationary)."""
    read = m3d.bank_plan.array.cell.read_energy_per_bit
    weight_energy = fc_net.total_weights * 8 * read
    one = simulate(m3d, fc_net, pdk, batch=1).energy
    many = simulate(m3d, fc_net, pdk, batch=16).energy
    # Removing one copy of the (batch-independent) weight energy from both
    # still leaves 'many' under 16x 'one' only if weights were not scaled.
    assert many - weight_energy < 16 * (one - weight_energy)


def test_conv_batching_scales_stream(pdk, baseline, resnet18_network):
    one = simulate(baseline, resnet18_network, pdk, batch=1)
    two = simulate(baseline, resnet18_network, pdk, batch=2)
    assert two.cycles < 2 * one.cycles
    assert two.cycles > 1.5 * one.cycles


def test_invalid_batch_rejected(pdk, m3d):
    with pytest.raises(ConfigurationError):
        AcceleratorSimulator(m3d, pdk, batch=0)


def test_batching_study_rows(pdk):
    rows = run_batching(pdk, batches=(1, 16))
    assert rows[0].utilization_2d < 0.1
    assert rows[1].utilization_2d > 2 * rows[0].utilization_2d
    assert all(row.speedup > 6.0 for row in rows)


# --- silicon allocator ----------------------------------------------------------------

@pytest.fixture(scope="module")
def base_point():
    return reference_design_point()


def test_compute_bound_prefers_cs(base_point):
    result = optimize_freed_silicon(
        Workload(compute_ops=16e9, data_bits=1e9), base_point, 7.0)
    assert result.prefers_compute
    assert result.best.extra_cs >= 4


def test_memory_bound_prefers_channels(base_point):
    result = optimize_freed_silicon(
        Workload(compute_ops=1e9, data_bits=16e9), base_point, 7.0)
    assert not result.prefers_compute
    assert result.best.extra_cs == 0


def test_best_is_argmax(base_point):
    result = optimize_freed_silicon(
        Workload(compute_ops=4e9, data_bits=4e9), base_point, 4.0)
    assert result.best.edp_benefit == max(
        c.edp_benefit for c in result.candidates)


def test_zero_area_keeps_baseline(base_point):
    result = optimize_freed_silicon(
        Workload(compute_ops=1e9, data_bits=1e9), base_point, 0.0)
    assert result.best == Allocation(0, 0, pytest.approx(1.0))


def test_candidates_respect_budget(base_point):
    budget = 5.0
    result = optimize_freed_silicon(
        Workload(compute_ops=1e9, data_bits=1e9), base_point, budget,
        channel_area_cost=0.5)
    for candidate in result.candidates:
        assert candidate.extra_cs + 0.5 * candidate.extra_channels \
            <= budget + 1e-9


def test_more_area_never_worse(base_point):
    workload = Workload(compute_ops=8e9, data_bits=2e9)
    small = optimize_freed_silicon(workload, base_point, 3.0)
    large = optimize_freed_silicon(workload, base_point, 7.0)
    assert large.best.edp_benefit >= small.best.edp_benefit


def test_negative_area_rejected(base_point):
    with pytest.raises(ConfigurationError):
        optimize_freed_silicon(
            Workload(compute_ops=1e9, data_bits=1e9), base_point, -1.0)
