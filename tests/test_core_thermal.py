"""Eq. 17 thermal stack model (Obs. 10)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.thermal import ThermalStack, max_tier_pairs, temperature_rise


def test_single_tier_hand_calc():
    stack = ThermalStack(r_ambient=0.4, r_per_pair=0.15)
    # (0.15 + 0.4) * 10 W = 5.5 K
    assert temperature_rise([10.0], stack) == pytest.approx(5.5)


def test_two_tier_hand_calc():
    stack = ThermalStack(r_ambient=0.4, r_per_pair=0.15)
    # tier1: (0.15+0.4)*10; tier2: (0.30+0.4)*10
    assert temperature_rise([10.0, 10.0], stack) == pytest.approx(5.5 + 7.0)


def test_rise_superlinear_in_pairs():
    """Uniform stacks heat quadratically: doubling Y more than doubles."""
    stack = ThermalStack()
    one = temperature_rise([10.0] * 2, stack)
    two = temperature_rise([10.0] * 4, stack)
    assert two > 2 * one


def test_upper_tiers_cost_more():
    stack = ThermalStack()
    bottom_heavy = temperature_rise([20.0, 0.001], stack)
    top_heavy = temperature_rise([0.001, 20.0], stack)
    assert top_heavy > bottom_heavy


def test_custom_resistances():
    stack = ThermalStack(r_ambient=0.0)
    rise = temperature_rise([1.0, 1.0], stack, resistances=[1.0, 2.0])
    assert rise == pytest.approx(1.0 * 1.0 + 3.0 * 1.0)


def test_resistance_count_mismatch_rejected():
    with pytest.raises(ConfigurationError):
        temperature_rise([1.0, 1.0], resistances=[1.0])


def test_negative_power_rejected():
    with pytest.raises(ConfigurationError):
        temperature_rise([-1.0])


def test_max_tier_pairs_decreases_with_power():
    previous = None
    for power in (1.0, 5.0, 10.0, 50.0):
        pairs = max_tier_pairs(power)
        if previous is not None:
            assert pairs <= previous
        previous = pairs


def test_max_tier_pairs_stays_in_budget():
    stack = ThermalStack()
    pairs = max_tier_pairs(10.0, stack)
    assert temperature_rise([10.0] * pairs, stack) <= stack.max_rise
    assert temperature_rise([10.0] * (pairs + 1), stack) > stack.max_rise


def test_max_tier_pairs_zero_when_one_tier_overheats():
    stack = ThermalStack(r_ambient=10.0, max_rise=5.0)
    assert max_tier_pairs(10.0, stack) == 0


def test_max_tier_pairs_hard_limit():
    assert max_tier_pairs(0.0, hard_limit=7) == 7


def test_case_study_chip_thermally_trivial():
    """The 20 MHz case-study chip burns ~0.1 W: no 3D thermal concern —
    the quantitative backing for the paper's Obs. 2."""
    assert temperature_rise([0.1]) < 0.1
