"""Property-based cross-validation: event simulator vs closed form."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import m3d_design
from repro.perf.simulator import AcceleratorSimulator
from repro.perf.tilesim import TileLevelSimulator
from repro.tech import foundry_m3d_pdk
from repro.workloads.layers import ConvLayer, FCLayer

_PDK = foundry_m3d_pdk()
_DESIGNS = {n: m3d_design(_PDK, n_cs=n) for n in (1, 2, 4, 8)}
_CLOSED = {n: AcceleratorSimulator(d, _PDK) for n, d in _DESIGNS.items()}
_EVENT = {n: TileLevelSimulator(d, _PDK) for n, d in _DESIGNS.items()}

conv_layers = st.builds(
    ConvLayer,
    name=st.just("c"),
    in_channels=st.integers(min_value=1, max_value=256),
    out_channels=st.integers(min_value=1, max_value=256),
    kernel=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
    in_size=st.integers(min_value=8, max_value=64),
    padding=st.integers(min_value=0, max_value=2),
)

fc_layers = st.builds(
    FCLayer,
    name=st.just("fc"),
    in_features=st.integers(min_value=1, max_value=4096),
    out_features=st.integers(min_value=1, max_value=4096),
)

layers = st.one_of(conv_layers, fc_layers)


def _exposed_load_allowance(layer, n_cs) -> float:
    """The event model exposes each tile's first slab load (the closed
    form double-buffers every load); allow tiles x load cycles."""
    design = _DESIGNS[n_cs]
    array = design.cs.array
    load = array.weight_bits_per_slab() / (
        design.total_weight_bandwidth / design.n_cs)
    return array.k_tiles(layer) * load


@given(layers, st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=120)
def test_event_never_exceeds_additive_bound(layer, n_cs):
    """The closed form (compute + full serial writeback) bounds the event
    simulation, up to the per-tile initial weight load it exposes."""
    closed = _CLOSED[n_cs].run_layer(layer).cycles
    event = _EVENT[n_cs].run_layer(layer).cycles
    assert event <= closed + _exposed_load_allowance(layer, n_cs) + 1e-9


@given(layers, st.sampled_from([1, 2, 4, 8]))
@settings(max_examples=120)
def test_event_at_least_compute_and_bus(layer, n_cs):
    """The event simulation can hide writeback under compute but can never
    beat the per-CS compute time or the raw bus occupancy."""
    closed = _CLOSED[n_cs].run_layer(layer)
    event = _EVENT[n_cs].run_layer(layer)
    assert event.cycles >= closed.compute_cycles * (1 - 1e-9)
    assert event.cycles >= event.bus_busy_cycles * (1 - 1e-9)


@given(conv_layers)
@settings(max_examples=60)
def test_single_cs_models_agree_exactly(layer):
    """With one CS there is no overlap to exploit: the models coincide up
    to the exposed per-tile loads and one tile of drain accounting."""
    closed = _CLOSED[1].run_layer(layer).cycles
    event = _EVENT[1].run_layer(layer).cycles
    slack = _exposed_load_allowance(layer, 1) + 64
    assert abs(event - closed) <= 0.02 * closed + slack
