"""The streaming sweep executor: exactness, pruning, crash-resume.

Three families of guarantees (DESIGN.md Sec. 10):

* **Exactness** — streaming evaluations equal the eager
  ``evaluate_sweep`` results with exact ``==`` (same resolver, same
  simulator, same engine call shapes), and with pruning enabled the
  surviving frontier equals the exhaustive one.  Golden Fig. 9/10 and
  Table I endpoints stay bit-identical through the streaming path.
* **Bounds** — ``spec_bounds`` is admissible on the whole joint grid:
  exact footprint, EDP-benefit upper bound never below the truth.
* **Durability** — a sweep SIGKILLed mid-flight resumes from its
  checkpoint: completed chunks replay (zero re-evaluations, pinned via
  RunReport stage counters) and the union equals an uninterrupted run.
"""

from __future__ import annotations

import itertools
import os
import signal
import subprocess
import sys
import textwrap

import pytest

import repro
from repro.core.dse import joint_grid_sweep
from repro.runtime.engine import EvaluationEngine
from repro.spec import ArchSpec, DesignSpec, SweepSpec, evaluate_sweep
from repro.sweep import (
    ChunkRecord,
    SweepCheckpoint,
    checkpoint_key,
    chunk_hash,
    exhaustive_frontier,
    run_streaming_sweep,
    spec_bounds,
    stream_sweep,
)

SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


@pytest.fixture(scope="module")
def joint_sweep():
    """The 36-point joint (capacity, delta, beta, Y) grid."""
    return joint_grid_sweep()


@pytest.fixture(scope="module")
def eager(joint_sweep, pdk):
    """Eager reference evaluations of the joint grid."""
    return evaluate_sweep(joint_sweep, pdk=pdk)


def _stage(report, name):
    return next((s for s in report.stages if s.name == name), None)


# --- exactness vs the eager path -------------------------------------------------


def test_streaming_equals_eager_exactly(joint_sweep, pdk, eager):
    result = run_streaming_sweep(joint_sweep, pdk=pdk, chunk_size=7)
    assert result.points == len(joint_sweep) == 36
    assert result.chunks == 6 and result.pruned == 0
    assert result.evaluations == eager


def test_chunk_size_does_not_change_results(joint_sweep, pdk, eager):
    for chunk_size in (1, 36, 100):
        result = run_streaming_sweep(joint_sweep, pdk=pdk,
                                     chunk_size=chunk_size)
        assert result.evaluations == eager


def test_collect_false_drops_per_point_results(joint_sweep, pdk, eager):
    result = run_streaming_sweep(joint_sweep, pdk=pdk, chunk_size=9,
                                 collect=False)
    assert result.evaluations is None
    assert result.points == 36 and result.evaluated == 36
    expected = exhaustive_frontier(
        (e.footprint, e.edp_benefit, e) for e in eager)
    assert result.frontier.steps() == tuple(
        dict.fromkeys((x, y) for x, y, _ in expected))


def test_pruned_streaming_frontier_is_exact(joint_sweep, pdk, eager):
    result = run_streaming_sweep(joint_sweep, pdk=pdk, chunk_size=5,
                                 prune=True)
    assert result.evaluated + result.pruned == 36
    expected = exhaustive_frontier(
        (e.footprint, e.edp_benefit, e) for e in eager)
    assert result.frontier.steps() == tuple(
        dict.fromkeys((x, y) for x, y, _ in expected))
    assert result.frontier_evaluations() == tuple(
        e for _, _, e in expected)


def test_bounds_admissible_on_the_joint_grid(joint_sweep, pdk, eager):
    for spec, evaluation in zip(joint_sweep.expand(), eager):
        bound = spec_bounds(spec, pdk)
        assert bound.footprint == evaluation.footprint
        assert bound.speedup_ub >= evaluation.speedup
        assert bound.energy_benefit_ub >= evaluation.energy_benefit
        assert bound.edp_benefit_ub >= evaluation.edp_benefit


# --- golden endpoints through the streaming path ---------------------------------


def test_fig9_endpoints_bit_identical(pdk):
    sweep = SweepSpec(base=DesignSpec(),
                      grid={"arch.capacity_mb": [12, 128]})
    result = run_streaming_sweep(sweep, pdk=pdk)
    low, high = result.evaluations
    assert low.spec.arch.capacity_bits == 100663296
    assert low.speedup == 1.0 and low.edp_benefit == 1.0
    assert high.spec.arch.capacity_bits == 1073741824
    assert high.speedup == 6.849705735189993
    assert high.edp_benefit == 6.852184823596777


def test_fig10c_endpoints_bit_identical(pdk):
    sweep = SweepSpec(base=DesignSpec(arch=ArchSpec(baseline="reoptimized")),
                      grid={"tech.delta": [1.0, 3.0]})
    result = run_streaming_sweep(sweep, pdk=pdk, prune=True)
    first, last = result.evaluations
    assert first.speedup == 5.630007688198693
    assert first.edp_benefit == 5.685221320948279
    assert last.edp_benefit == 1.1859212568861623


def test_table1_headline_bit_identical(pdk, resnet18_benefit):
    result = run_streaming_sweep(SweepSpec(base=DesignSpec()), pdk=pdk)
    (evaluation,) = result.evaluations
    assert evaluation.speedup == resnet18_benefit.speedup
    assert evaluation.edp_benefit == resnet18_benefit.edp_benefit


# --- laziness / bounded memory ---------------------------------------------------


def test_stream_never_expands_a_huge_grid():
    deltas = tuple(1.0 + i / 1000.0 for i in range(1000))
    betas = tuple(1.0 + i / 1000.0 for i in range(1000))
    sweep = SweepSpec(base=DesignSpec(),
                      grid={"tech.delta": deltas, "tech.beta": betas})
    assert len(sweep) == 1_000_000
    chunks = list(itertools.islice(
        stream_sweep(sweep, chunk_size=3,
                     engine=EvaluationEngine(jobs=1)), 2))
    assert [c.size for c in chunks] == [3, 3]
    assert all(len(c.evaluations) == 3 for c in chunks)


# --- checkpoint / resume ---------------------------------------------------------


def _capacity_sweep(megabytes=(12, 16, 24, 32, 48, 64)):
    return SweepSpec(base=DesignSpec(),
                     grid={"arch.capacity_mb": list(megabytes)})


def test_resume_replays_every_chunk(tmp_path, pdk):
    sweep = _capacity_sweep()
    cold = run_streaming_sweep(sweep, pdk=pdk, chunk_size=2,
                               checkpoint=tmp_path,
                               engine=EvaluationEngine(jobs=1))
    assert cold.resumed_chunks == 0 and cold.chunks == 3
    warm_engine = EvaluationEngine(jobs=1)
    warm = run_streaming_sweep(sweep, pdk=pdk, chunk_size=2,
                               checkpoint=tmp_path, engine=warm_engine)
    assert warm.resumed_chunks == warm.chunks == 3
    assert warm.evaluations == cold.evaluations
    assert warm.frontier.steps() == cold.frontier.steps()
    # Replay touches the engine's evaluate stage not even once.
    assert _stage(warm_engine.report(), "sweep.evaluate") is None


def test_resume_prunes_identically(tmp_path, pdk):
    sweep = joint_grid_sweep()
    cold = run_streaming_sweep(sweep, pdk=pdk, chunk_size=4, prune=True,
                               checkpoint=tmp_path,
                               engine=EvaluationEngine(jobs=1))
    warm = run_streaming_sweep(sweep, pdk=pdk, chunk_size=4, prune=True,
                               checkpoint=tmp_path,
                               engine=EvaluationEngine(jobs=1))
    assert warm.resumed_chunks == warm.chunks == cold.chunks
    assert warm.pruned == cold.pruned
    assert warm.evaluations == cold.evaluations


def test_checkpoint_keys_isolate_runs(tmp_path, pdk):
    sweep = _capacity_sweep((12, 16))
    run_streaming_sweep(sweep, pdk=pdk, chunk_size=2, checkpoint=tmp_path,
                        engine=EvaluationEngine(jobs=1))
    other_size = run_streaming_sweep(sweep, pdk=pdk, chunk_size=1,
                                     checkpoint=tmp_path,
                                     engine=EvaluationEngine(jobs=1))
    assert other_size.resumed_chunks == 0
    assert checkpoint_key(sweep, pdk=pdk, chunk_size=2) \
        != checkpoint_key(sweep, pdk=pdk, chunk_size=1)
    assert checkpoint_key(sweep, pdk=pdk, chunk_size=2, prune=True) \
        != checkpoint_key(sweep, pdk=pdk, chunk_size=2)


def test_corrupt_record_degrades_to_reevaluation(tmp_path, pdk):
    sweep = _capacity_sweep((12, 16, 24, 32))
    cold = run_streaming_sweep(sweep, pdk=pdk, chunk_size=2,
                               checkpoint=tmp_path,
                               engine=EvaluationEngine(jobs=1))
    store = SweepCheckpoint.for_sweep(tmp_path, sweep, pdk=pdk,
                                      chunk_size=2)
    assert len(store) == 2
    (store.directory / "chunk-00000000.json").write_text("{ torn")
    warm = run_streaming_sweep(sweep, pdk=pdk, chunk_size=2,
                               checkpoint=tmp_path,
                               engine=EvaluationEngine(jobs=1))
    assert warm.resumed_chunks == 1  # the intact record still replays
    assert warm.evaluations == cold.evaluations


def test_record_with_stale_hash_is_refused(tmp_path):
    store = SweepCheckpoint(tmp_path, "0123456789abcdef")
    record = ChunkRecord(index=0, specs_hash=chunk_hash([DesignSpec()]),
                         pruned=0, evaluations=())
    assert store.store(record)
    assert store.get(0, record.specs_hash) == record
    assert store.get(0, "someotherhash") is None
    assert store.get(1, record.specs_hash) is None


def test_sigkill_mid_sweep_resumes_with_zero_reevaluations(tmp_path, pdk):
    """Kill -9 after the second chunk; the restart replays chunks 0-1
    from disk, evaluates only chunk 2, and the union matches an
    uninterrupted run."""
    sweep = _capacity_sweep()
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(sweep.to_json())
    ckpt_dir = tmp_path / "ckpt"
    child = textwrap.dedent("""
        import os, signal, sys
        from repro.runtime.engine import EvaluationEngine
        from repro.spec import load_sweep_spec
        from repro.sweep import stream_sweep
        sweep = load_sweep_spec(sys.argv[1])
        completed = 0
        for chunk in stream_sweep(sweep, chunk_size=2,
                                  checkpoint=sys.argv[2],
                                  engine=EvaluationEngine(jobs=1)):
            completed += 1
            if completed == 2:
                os.kill(os.getpid(), signal.SIGKILL)
        """)
    env = dict(os.environ, PYTHONPATH=SRC)
    proc = subprocess.run(
        [sys.executable, "-c", child, str(spec_path), str(ckpt_dir)],
        env=env, capture_output=True, text=True, timeout=120)
    assert proc.returncode == -signal.SIGKILL, proc.stderr

    store = SweepCheckpoint.for_sweep(ckpt_dir, sweep, chunk_size=2)
    assert len(store) == 2  # chunks 0 and 1 flushed before the kill

    engine = EvaluationEngine(jobs=1)
    resumed = run_streaming_sweep(sweep, chunk_size=2, checkpoint=ckpt_dir,
                                  engine=engine)
    assert resumed.chunks == 3 and resumed.resumed_chunks == 2
    reference = evaluate_sweep(sweep, engine=EvaluationEngine(jobs=1))
    assert resumed.evaluations == reference
    # RunReport counters: exactly one chunk (2 points) hit the engine.
    stats = _stage(engine.report(), "sweep.evaluate")
    assert stats is not None
    assert stats.calls == stats.evaluated == 2
