"""Congestion analysis and the paper-claim validator."""

import pytest

from repro.physical.congestion import analyze_congestion
from repro.physical.flow import run_flow
from repro.arch import m3d_design
from repro.validate import Check, format_validation


@pytest.fixture(scope="module")
def flows(pdk, baseline, m3d):
    return run_flow(baseline, pdk), run_flow(m3d, pdk)


@pytest.fixture(scope="module")
def reports(flows):
    return tuple(analyze_congestion(flow) for flow in flows)


def test_both_designs_routable(reports):
    for report in reports:
        assert report.routable


def test_track_utilization_low(reports):
    """Block-level wiring is nowhere near the metal capacity."""
    for report in reports:
        assert report.track_utilization < 0.2


def test_m3d_ilv_utilization_high_but_feasible(reports):
    """At fine pitch the memory cells consume most — but not all — of the
    via sites over the array: the design sits exactly where Case 2 says it
    should (barely FET-limited)."""
    _, m3d_report = reports
    assert 0.8 < m3d_report.ilv_utilization <= 1.0


def test_2d_ilv_utilization_negligible(reports):
    report_2d, _ = reports
    assert report_2d.ilv_utilization < 0.01


def test_coarse_pitch_saturates_ilvs(pdk):
    """Coarsening the ILV pitch pushes the array into the via-limited
    regime: utilization pegs at 1 (every site used)."""
    coarse = pdk.with_ilv_pitch_factor(1.5)
    flow = run_flow(m3d_design(coarse), coarse)
    report = analyze_congestion(flow)
    assert report.ilv_utilization == pytest.approx(1.0, abs=0.01)


def test_m3d_ilv_demand_dominated_by_cells(reports, m3d):
    _, m3d_report = reports
    cell_vias = m3d.rram_capacity_bits * 2  # two ILVs per bit
    assert m3d_report.ilv_demand >= cell_vias


# --- validator ----------------------------------------------------------------

def test_format_validation_pass_fail():
    checks = (
        Check(name="a", paper="1x", measured="1x", passed=True),
        Check(name="b", paper="2x", measured="9x", passed=False),
    )
    text = format_validation(checks)
    assert "[PASS] a" in text
    assert "[FAIL] b" in text
    assert "1/2 claims reproduced" in text


def test_validator_subset_runs(pdk):
    """Spot-run two cheap validator sections end to end."""
    from repro.validate import run_validation
    checks = run_validation(pdk)
    by_name = {check.name: check for check in checks}
    assert by_name["Table I total speedup"].passed
    assert by_name["Obs. 2 upper-tier power"].passed
    assert len(checks) >= 14
    assert all(check.passed for check in checks)
