"""Experiment registry (:mod:`repro.experiments.registry`).

* every experiment module registers at least one experiment, so the CLI
  can never silently lose an artifact;
* registered drivers and the legacy ``run_*`` shims agree;
* duplicate names are a hard error at import time;
* the markdown listing covers the whole registry (README is generated
  from it).
"""

from __future__ import annotations

import pkgutil

import pytest

import repro.experiments  # populates the registry
from repro.experiments.registry import (
    ExperimentContext,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
    registry_markdown,
    run_experiment,
)

#: Package modules that host infrastructure rather than experiments.
NON_EXPERIMENT_MODULES = {"registry", "reporting"}


def experiment_modules() -> set[str]:
    """Names of the experiment-bearing modules under repro.experiments."""
    return {
        module.name
        for module in pkgutil.iter_modules(repro.experiments.__path__)
        if module.name not in NON_EXPERIMENT_MODULES
    }


class TestCompleteness:
    def test_every_module_registers_at_least_one_experiment(self):
        registered = {exp.module.removeprefix("repro.experiments.")
                      for exp in all_experiments()}
        missing = experiment_modules() - registered
        assert not missing, (
            f"experiment modules without a registered experiment: {missing}")

    def test_names_are_unique(self):
        names = experiment_names()
        assert len(names) == len(set(names))

    def test_paper_artifacts_are_registered(self):
        names = set(experiment_names())
        for required in ("casestudy", "fig5", "table1", "fig7", "fig8",
                         "fig9", "fig10c", "obs8", "fig10d", "obs10", "obs3",
                         "dse", "ext-memtech", "ext-beol-logic",
                         "ext-precision", "ext-batching", "folding"):
            assert required in names

    def test_summaries_and_formatters_present(self):
        for exp in all_experiments():
            assert exp.summary, exp.name
            assert callable(exp.run), exp.name
            assert callable(exp.formatter), exp.name

    def test_duplicate_registration_is_an_error(self):
        with pytest.raises(ValueError, match="already registered"):
            @experiment("fig8", "dup", formatter=str)
            def fig8_again(ctx):
                return None


class TestContext:
    def test_create_fills_defaults(self):
        ctx = ExperimentContext.create()
        assert ctx.pdk is not None
        assert ctx.engine is not None
        assert ctx.jobs is None
        assert ctx.tracer is None  # tracing off by default

    def test_create_respects_overrides(self):
        from repro.runtime.engine import EvaluationEngine
        engine = EvaluationEngine(jobs=1, use_cache=False)
        ctx = ExperimentContext.create(engine=engine, jobs=3)
        assert ctx.engine is engine
        assert ctx.jobs == 3


class TestParityWithLegacyShims:
    """The registered drivers and the historical run_* signatures agree."""

    def test_obs10(self):
        from repro.experiments import run_obs10
        assert run_experiment("obs10") == run_obs10()

    def test_fig8(self):
        from repro.experiments import run_fig8
        assert run_experiment("fig8") == run_fig8()

    def test_fig9(self):
        from repro.experiments.fig9 import run_fig9
        ctx = ExperimentContext.create()
        assert get_experiment("fig9").run(ctx) == run_fig9(ctx.pdk)

    def test_table1(self):
        from repro.experiments import run_table1
        ctx = ExperimentContext.create()
        assert get_experiment("table1").run(ctx) == run_table1(ctx.pdk)

    def test_run_formatted_matches_formatter(self):
        exp = get_experiment("obs10")
        assert exp.run_formatted() == exp.formatter(run_experiment("obs10"))


class TestMarkdown:
    def test_listing_covers_every_experiment(self):
        text = registry_markdown()
        lines = text.splitlines()
        assert lines[0] == "| experiment | summary | module |"
        for exp in all_experiments():
            assert f"| `{exp.name}` |" in text

    def test_module_column_strips_package_prefix(self):
        assert "repro.experiments." not in registry_markdown()


class TestShimDeprecation:
    """The legacy ``run_*`` shims warn; the registry drivers do not."""

    def test_run_shim_emits_deprecation_warning(self):
        from repro.experiments.fig10 import run_obs10
        with pytest.warns(DeprecationWarning,
                          match=r"run_obs10\(\) is deprecated.*v2\.0.*"
                                r"run_experiment\('obs10', ctx\)"):
            run_obs10(powers=(1.0,))

    def test_context_building_shim_warns(self):
        from repro.experiments.fig8 import run_fig8
        with pytest.warns(DeprecationWarning, match="run_fig8"):
            run_fig8()

    def test_registry_driver_does_not_warn(self):
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error", DeprecationWarning)
            run_experiment("obs10")

    def test_every_shim_is_marked_deprecated(self):
        """No ``run_*`` shim without the warning call (or a docstring
        saying so) sneaks back in."""
        import inspect
        import repro.experiments as experiments_pkg

        import pkgutil
        for info in pkgutil.iter_modules(experiments_pkg.__path__):
            module = __import__(f"repro.experiments.{info.name}",
                                fromlist=["_"])
            for name, fn in vars(module).items():
                if not name.startswith("run_") or not callable(fn):
                    continue
                if getattr(fn, "__module__", None) != module.__name__:
                    continue           # re-export (e.g. run_flow), not a shim
                if name in ("run_experiment", "run_validation"):
                    continue
                source = inspect.getsource(fn)
                assert "warn_deprecated_shim(" in source, (
                    f"{module.__name__}.{name} is a legacy shim without a "
                    f"DeprecationWarning")
