"""PE and systolic-array configuration arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.pe import PEConfig, default_pe
from repro.arch.systolic import SystolicArrayConfig, default_systolic_array
from repro.workloads.layers import ConvLayer, FCLayer
from repro.workloads.models import resnet18


@pytest.fixture(scope="module")
def array():
    return default_systolic_array()


def test_default_pe_precision():
    pe = default_pe()
    assert pe.precision_bits == 8
    assert pe.register_bits == 8 + 8 + 24


def test_pe_area_positive(pdk):
    assert default_pe().area(pdk) > 0


def test_pe_mac_energy_scales_with_precision():
    pe8 = PEConfig(precision_bits=8)
    pe4 = PEConfig(precision_bits=4, weight_reg_bits=4, output_reg_bits=16)
    assert pe4.mac_energy == pytest.approx(pe8.mac_energy / 4)


def test_pe_rejects_undersized_weight_register():
    with pytest.raises(ConfigurationError):
        PEConfig(precision_bits=16, weight_reg_bits=8)


def test_default_array_is_16x16(array):
    assert array.rows == 16
    assert array.cols == 16
    assert array.pe_count == 256
    assert array.peak_macs_per_cycle == 256


def test_fill_drain_is_rows_plus_cols(array):
    assert array.fill_drain_cycles == 32


def test_k_tiles(array):
    layer = resnet18().layer("L2.0 CONV2")
    assert array.k_tiles(layer) == 8


def test_row_packing_applies_to_stem_only(array):
    net = resnet18()
    assert array.uses_row_packing(net.layer("CONV1"))
    assert not array.uses_row_packing(net.layer("L1.0 CONV1"))


def test_row_packing_not_for_fc(array):
    fc = FCLayer("fc", in_features=3, out_features=16)
    assert not array.uses_row_packing(fc)


def test_row_tiles_with_packing(array):
    stem = resnet18().layer("CONV1")  # C=3, R=7 -> 21 rows -> 2 tiles
    assert array.row_tiles(stem) == 2
    assert array.kernel_passes(stem) == 7


def test_row_tiles_without_packing(array):
    layer = resnet18().layer("L3.0 CONV2")  # C=256 -> 16 tiles
    assert array.row_tiles(layer) == 16
    assert array.kernel_passes(layer) == 9


def test_slab_count_conv(array):
    layer = resnet18().layer("L2.0 CONV2")  # Kt=8, Ct=8, 3x3
    assert array.slab_count(layer) == 8 * 8 * 9


def test_slab_count_fc(array):
    fc = FCLayer("fc", in_features=512, out_features=1000)
    assert array.slab_count(fc) == 63 * 32


def test_stream_cycles_per_slab_conv(array):
    layer = resnet18().layer("L2.0 CONV2")
    assert array.stream_cycles_per_slab(layer) == 28 * 28 + 32


def test_stream_cycles_per_slab_fc(array):
    fc = FCLayer("fc", in_features=512, out_features=1000)
    assert array.stream_cycles_per_slab(fc) == 1 + 32


def test_weight_bits_per_slab(array):
    assert array.weight_bits_per_slab() == 256 * 8


def test_custom_array_shape():
    array = SystolicArrayConfig(rows=32, cols=8)
    assert array.pe_count == 256
    layer = ConvLayer("c", in_channels=64, out_channels=64, kernel=3,
                      stride=1, in_size=28, padding=1)
    assert array.k_tiles(layer) == 8
    assert array.row_tiles(layer) == 2


def test_array_rejects_zero_dims():
    with pytest.raises(ConfigurationError):
        SystolicArrayConfig(rows=0, cols=16)
