"""Property-based tests for the incremental Pareto frontier.

The streaming executor's pruning rests on three claims about
:class:`repro.sweep.pareto.ParetoFrontier` (DESIGN.md Sec. 10):

1. the maintained set is exactly the non-dominated subset — no frontier
   point is dominated, and no non-dominated point is missing;
2. every point the frontier rejects (or certifies prunable from
   admissible bounds) is dominated by a member of the *final* frontier —
   the witness chain survives later evictions;
3. the result is insertion-order independent.

Strategies draw coordinates from a small grid so exact ties, duplicate
points, and equal-x/equal-y near-misses are generated often — those are
the edges where a staircase implementation breaks.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sweep.pareto import ParetoFrontier, dominates, exhaustive_frontier

# Small coordinate pools make collisions (ties, shared x, shared y) common.
coords = st.one_of(
    st.integers(min_value=0, max_value=8).map(float),
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False,
              allow_infinity=False),
)
points = st.lists(st.tuples(coords, coords), min_size=1, max_size=40)


def build(point_list):
    frontier = ParetoFrontier()
    rejected = []
    for index, (x, y) in enumerate(point_list):
        if not frontier.add(x, y, index):
            rejected.append((x, y))
    return frontier, rejected


@given(points)
@settings(max_examples=200)
def test_no_frontier_point_dominated(point_list):
    frontier, _ = build(point_list)
    steps = frontier.steps()
    for x, y in steps:
        assert not any(dominates(ox, oy, x, y) for ox, oy in point_list)
    # Staircase shape: strictly ascending in both coordinates.
    assert all(a[0] < b[0] and a[1] < b[1]
               for a, b in zip(steps, steps[1:]))


@given(points)
@settings(max_examples=200)
def test_matches_exhaustive_frontier(point_list):
    frontier, _ = build(point_list)
    expected = exhaustive_frontier(
        (x, y, None) for x, y in point_list)
    assert set(frontier.steps()) == {(x, y) for x, y, _ in expected}
    assert len(frontier) == len(expected)


@given(points)
@settings(max_examples=200)
def test_every_rejected_point_has_a_final_frontier_witness(point_list):
    """Rejection is permanent: a witness evicted later was evicted by a
    dominator, so some *final* frontier member still dominates."""
    frontier, rejected = build(point_list)
    steps = frontier.steps()
    for x, y in rejected:
        assert any(dominates(wx, wy, x, y) for wx, wy in steps)


@given(points)
@settings(max_examples=200)
def test_insertion_order_is_irrelevant(point_list):
    forward, _ = build(point_list)
    backward, _ = build(list(reversed(point_list)))
    shuffled, _ = build(sorted(point_list, key=lambda p: (p[1], -p[0])))
    assert forward.steps() == backward.steps() == shuffled.steps()


@given(points, st.tuples(coords, coords))
@settings(max_examples=200)
def test_dominator_answers_match_brute_force(point_list, probe):
    frontier, _ = build(point_list)
    x, y = probe
    witness = frontier.dominator(x, y)
    expected = any(dominates(wx, wy, x, y) for wx, wy in frontier.steps())
    assert (witness is not None) == expected


@given(points, st.tuples(coords, coords),
       st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
       st.floats(min_value=0.0, max_value=2.0, allow_nan=False))
@settings(max_examples=200)
def test_certified_dominator_is_sound_under_admissible_bounds(
        point_list, true_point, x_slack, y_slack):
    """Whatever admissible bounds describe the true point, a non-None
    witness really dominates the point itself."""
    frontier, _ = build(point_list)
    x, y = true_point
    x_lb, y_ub = x - x_slack, y + y_slack  # x_lb <= x, y_ub >= y
    witness = frontier.certified_dominator(x_lb, y_ub)
    if witness is not None:
        assert frontier.dominator(x, y) is not None
        assert any(dominates(wx, wy, x, y) for wx, wy in frontier.steps())


@given(points)
@settings(max_examples=100)
def test_exact_ties_all_kept(point_list):
    frontier = ParetoFrontier()
    for index, (x, y) in enumerate(point_list):
        frontier.add(x, y, index)
        frontier.add(x, y, -index)  # exact duplicate must not be dropped
    for x, y in frontier.steps():
        holders = [item for px, py, item in frontier
                   if (px, py) == (x, y)]
        assert len(holders) >= 2


def test_tie_payloads_share_one_step():
    frontier = ParetoFrontier()
    assert frontier.add(1.0, 1.0, "a")
    assert frontier.add(1.0, 1.0, "b")
    assert frontier.steps() == ((1.0, 1.0),)
    assert frontier.items() == ("a", "b")
    assert len(frontier) == 2


def test_certified_dominator_spares_exact_ties():
    """A point whose bounds exactly equal a frontier step is NOT certified
    dominated — it belongs on the frontier with the incumbent."""
    frontier = ParetoFrontier()
    frontier.add(1.0, 5.0, "w")
    assert frontier.certified_dominator(1.0, 5.0) is None
    assert frontier.certified_dominator(1.0, 4.0) == "w"
    assert frontier.certified_dominator(2.0, 5.0) == "w"
    assert frontier.certified_dominator(0.5, 5.0) is None


def test_non_finite_objectives_rejected():
    frontier = ParetoFrontier()
    with pytest.raises(ConfigurationError, match="finite"):
        frontier.add(float("nan"), 1.0)
    with pytest.raises(ConfigurationError, match="finite"):
        frontier.add(1.0, float("inf"))


def test_update_counts_accepted_points():
    frontier = ParetoFrontier()
    accepted = frontier.update([(1.0, 1.0, "a"), (2.0, 0.5, "dominated"),
                                (0.5, 2.0, "b")])
    assert accepted == 2
    assert frontier.steps() == ((0.5, 2.0),)
