"""Technology node model and scaling helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.node import (
    NODE_40NM,
    NODE_130NM,
    TechnologyNode,
    scale_area,
    scale_delay,
    scale_energy,
)
from repro.units import NM, UM2


def test_130nm_feature_size():
    assert NODE_130NM.feature_size == pytest.approx(130 * NM)


def test_f2_is_feature_size_squared():
    assert NODE_130NM.f2 == pytest.approx((130 * NM) ** 2)


def test_area_from_f2():
    assert NODE_130NM.area_from_f2(36.0) == pytest.approx(36.0 * NODE_130NM.f2)


def test_area_from_f2_rejects_negative():
    with pytest.raises(ConfigurationError):
        NODE_130NM.area_from_f2(-1.0)


def test_40nm_node_is_smaller_and_faster():
    assert NODE_40NM.feature_size < NODE_130NM.feature_size
    assert NODE_40NM.gate_delay < NODE_130NM.gate_delay
    assert NODE_40NM.gate_area < NODE_130NM.gate_area


def test_scale_area_is_quadratic():
    scaled = scale_area(100 * UM2, NODE_130NM, NODE_40NM)
    assert scaled == pytest.approx(100 * UM2 * (40 / 130) ** 2)


def test_scale_area_identity():
    assert scale_area(5.0, NODE_130NM, NODE_130NM) == pytest.approx(5.0)


def test_scale_delay_is_linear():
    assert scale_delay(1e-9, NODE_130NM, NODE_40NM) == pytest.approx(
        1e-9 * 40 / 130)


def test_scale_energy_accounts_for_voltage():
    scaled = scale_energy(1e-12, NODE_130NM, NODE_40NM)
    expected = 1e-12 * (40 / 130) * (0.9 / 1.2) ** 2
    assert scaled == pytest.approx(expected)


def test_scale_round_trip():
    there = scale_area(7.0, NODE_130NM, NODE_40NM)
    back = scale_area(there, NODE_40NM, NODE_130NM)
    assert back == pytest.approx(7.0)


def test_invalid_node_rejected():
    with pytest.raises(ConfigurationError):
        TechnologyNode(name="bad", feature_size=-1.0, supply_voltage=1.0,
                       gate_area=1.0, gate_energy=1.0, gate_delay=1.0,
                       gate_leakage=0.0)


def test_negative_leakage_rejected():
    with pytest.raises(ConfigurationError):
        TechnologyNode(name="bad", feature_size=1e-7, supply_voltage=1.0,
                       gate_area=1e-12, gate_energy=1e-15, gate_delay=1e-10,
                       gate_leakage=-1.0)
