"""Integration suite: every headline claim of the paper in one place.

Each test names the claim it checks, with the tolerance used in
EXPERIMENTS.md.  These are the "does the reproduction reproduce" tests —
if one fails, the corresponding table/figure in EXPERIMENTS.md is stale.
"""

import pytest

from repro.arch import baseline_2d_design, m3d_design
from repro.core import sweep_fet_width, sweep_tiers, sweep_via_pitch
from repro.core.insights import sweep_rram_capacity
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import run_fig7
from repro.experiments.casestudy import run_case_study
from repro.perf import compare_designs, simulate
from repro.workloads import build_network


@pytest.fixture(scope="module")
def case_study(pdk):
    return run_case_study(pdk)


class TestHeadline:
    """Abstract: 5.3x-11.5x analytical range; 5.7x-7.5x case study."""

    def test_case_study_edp_range(self, pdk):
        rows = run_fig5(pdk)
        benefits = [row.edp_benefit for row in rows]
        assert min(benefits) == pytest.approx(5.7, rel=0.05)
        assert max(benefits) == pytest.approx(7.5, rel=0.10)

    def test_architectural_range_5p3_to_11p5(self, pdk):
        rows = run_fig7(pdk)
        benefits = [row.analytic_edp for row in rows]
        assert min(benefits) == pytest.approx(5.3, rel=0.20)
        assert max(benefits) == pytest.approx(11.5, rel=0.15)

    def test_folding_alone_would_not_give_this(self, resnet18_benefit):
        """Prior folding-only approaches reach ~1.4x; new architectural
        design points are what unlock >5x (the paper's thesis)."""
        assert resnet18_benefit.edp_benefit > 4 * 1.4


class TestSectionII:
    """Physical design case study."""

    def test_iso_constraints(self, case_study):
        assert case_study.iso_footprint
        assert case_study.iso_capacity

    def test_one_to_eight_cs(self, case_study):
        assert case_study.baseline.design.n_cs == 1
        assert case_study.m3d.design.n_cs == 8

    def test_both_close_timing_at_20mhz(self, case_study):
        assert case_study.baseline.timing.meets_target
        assert case_study.m3d.timing.meets_target
        assert case_study.baseline.design.frequency_hz == 20e6

    def test_obs2_upper_tier_power(self, case_study):
        assert case_study.upper_tier_fraction < 0.01

    def test_obs2_peak_power_density(self, case_study):
        assert case_study.peak_density_ratio < 1.02

    def test_table1_total(self, resnet18_benefit):
        assert resnet18_benefit.speedup == pytest.approx(5.64, rel=0.05)
        assert resnet18_benefit.energy_benefit == pytest.approx(1.0, abs=0.05)
        assert resnet18_benefit.edp_benefit == pytest.approx(5.66, rel=0.05)


class TestSectionIII:
    """Analytical framework observations."""

    def test_obs6_capacity_scaling(self, pdk):
        points = {round(p.capacity_megabytes): p
                  for p in sweep_rram_capacity(pdk=pdk)}
        assert points[12].edp_benefit == pytest.approx(1.0, abs=0.02)
        assert points[128].edp_benefit == pytest.approx(6.8, rel=0.05)

    def test_obs7_fet_width_tolerance(self, pdk):
        results = {r.delta: r for r in sweep_fet_width((1.0, 1.6, 2.5), pdk)}
        assert results[1.6].edp_benefit == pytest.approx(
            results[1.0].edp_benefit, rel=0.02)
        assert 1.0 < results[2.5].edp_benefit < 2.0

    def test_obs8_via_pitch_tolerance(self, pdk):
        results = {r.beta: r for r in sweep_via_pitch((1.0, 1.3, 1.6), pdk)}
        assert results[1.3].edp_benefit == pytest.approx(
            results[1.0].edp_benefit, rel=0.02)
        assert results[1.6].edp_benefit < 0.4 * results[1.0].edp_benefit

    def test_obs9_tier_scaling(self, pdk):
        results = sweep_tiers(4, pdk)
        assert results[0].edp_benefit == pytest.approx(5.7, rel=0.05)
        assert results[1].edp_benefit == pytest.approx(6.9, rel=0.05)
        assert max(r.edp_benefit for r in results) == pytest.approx(
            7.1, rel=0.05)

    def test_obs4_model_agreement(self, pdk):
        rows = run_fig7(pdk)
        assert all(row.edp_disagreement < 0.10 for row in rows)


class TestConservatism:
    """The comparisons are stacked against M3D, per the paper."""

    def test_baseline_already_has_benefits_of_on_chip_memory(self, baseline):
        """The 2D baseline keeps all weights on-chip (no DRAM)."""
        net = build_network("resnet152")
        assert net.weight_bits(8) <= baseline.rram_capacity_bits

    def test_m3d_gains_nothing_from_memory_tech(self, baseline, m3d):
        """Same RRAM cells, same capacity, same read energy on both sides."""
        assert baseline.bank_plan.array.cell.read_energy_per_bit \
            == m3d.bank_plan.array.cell.read_energy_per_bit

    def test_m3d_footprint_never_larger(self, baseline, m3d):
        assert m3d.area.footprint <= baseline.area.footprint * (1 + 1e-9)
