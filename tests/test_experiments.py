"""Experiment drivers: structure and formatting."""

import pytest

from repro.experiments import (
    format_case_study,
    format_fig5,
    format_fig8,
    format_fig9,
    format_fig10c,
    format_fig10d,
    format_obs3,
    format_obs8,
    format_obs10,
    format_table1,
    run_case_study,
    run_fig5,
    run_fig8,
    run_fig9,
    run_fig10c,
    run_fig10d,
    run_obs3,
    run_obs8,
    run_obs10,
    run_table1,
)
from repro.experiments.reporting import format_table, percent, times


# --- reporting helpers ---------------------------------------------------------

def test_format_table_alignment():
    text = format_table("T", ["a", "long_header"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long_header" in lines[1]
    assert len(lines) == 5


def test_format_table_rejects_ragged_rows():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        format_table("T", ["a", "b"], [["only-one"]])


def test_times_formatting():
    assert times(5.664) == "5.66x"
    assert times(5.664, 1) == "5.7x"


def test_percent_formatting():
    assert percent(0.0062, 2) == "0.62%"


# --- drivers -----------------------------------------------------------------------

@pytest.fixture(scope="module")
def case_study(pdk):
    return run_case_study(pdk)


def test_case_study_headlines(case_study):
    assert case_study.iso_footprint
    assert case_study.iso_capacity
    assert case_study.cs_gain == 7  # 1 CS -> 8 CSs
    assert case_study.upper_tier_fraction < 0.01
    assert 1.0 <= case_study.peak_density_ratio < 1.02


def test_case_study_format(case_study):
    text = format_case_study(case_study)
    assert "2D baseline" in text and "M3D" in text
    assert "iso-footprint: True" in text


def test_fig5_rows(pdk):
    rows = run_fig5(pdk)
    assert len(rows) == 6
    text = format_fig5(rows)
    assert "resnet18" in text and "EDP benefit range" in text


def test_table1_rows_and_total(pdk):
    rows = run_table1(pdk)
    assert rows[0].name == "CONV1+POOL"
    assert rows[-1].name == "Total"
    assert len(rows) == 21  # merged stem + 19 conv/DS rows + total
    text = format_table1(rows)
    assert "paper speedup" in text


def test_table1_total_matches_paper(pdk):
    total = run_table1(pdk)[-1]
    assert total.speedup == pytest.approx(5.64, rel=0.05)
    assert total.edp_benefit == pytest.approx(5.66, rel=0.05)


def test_fig8_result(pdk):
    result = run_fig8()
    assert result.compute_bound_doubling == pytest.approx(2.1, rel=0.1)
    assert result.memory_bound_rebalance == pytest.approx(2.1, rel=0.1)
    text = format_fig8(result)
    assert "Fig. 8a" in text and "Fig. 8b" in text


def test_fig9_series(pdk):
    points = run_fig9(pdk)
    text = format_fig9(points)
    assert "12 MB" in text and "128 MB" in text


def test_fig10c_series(pdk):
    results = run_fig10c(pdk)
    assert results[0].delta == 1.0
    text = format_fig10c(results)
    assert "delta" in text


def test_obs8_series(pdk):
    results = run_obs8(pdk)
    text = format_obs8(results)
    assert "beta" in text


def test_fig10d_result(pdk):
    result = run_fig10d(pdk, max_pairs=3)
    assert len(result.network_sweep) == 3
    assert len(result.parallel_layer_sweep) == 3
    text = format_fig10d(result)
    assert "pairs Y" in text


def test_obs3_rows(pdk):
    rows = run_obs3(pdk)
    by_ratio = {row.density_ratio: row for row in rows}
    assert by_ratio[1.0].n_cs == 8
    assert by_ratio[2.0].n_cs == 16
    assert by_ratio[2.0].edp_benefit == pytest.approx(6.8, rel=0.05)
    text = format_obs3(rows)
    assert "16" in text


def test_obs10_rows():
    rows = run_obs10()
    assert all(row.max_pairs >= 0 for row in rows)
    pair_counts = [row.max_pairs for row in rows]
    assert pair_counts == sorted(pair_counts, reverse=True)
    text = format_obs10(rows)
    assert "60 K" in text
