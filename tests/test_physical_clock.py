"""Clock-tree synthesis model."""

import pytest

from repro.errors import ConfigurationError
from repro.physical.clock import synthesize_clock_tree
from repro.physical.floorplan import build_floorplan
from repro.physical.netlist import synthesize


@pytest.fixture(scope="module")
def trees(pdk, baseline, m3d):
    result = []
    for design in (baseline, m3d):
        netlist = synthesize(design, pdk)
        plan = build_floorplan(netlist, design, pdk)
        result.append(synthesize_clock_tree(plan, netlist,
                                            design.frequency_hz))
    return tuple(result)


def test_m3d_has_more_sinks(trees):
    tree_2d, tree_m3d = trees
    assert tree_m3d.sink_count > tree_2d.sink_count


def test_levels_logarithmic(trees):
    tree_2d, tree_m3d = trees
    assert 1 <= tree_2d.levels <= tree_m3d.levels <= 6


def test_wirelength_positive_and_die_scale(trees, baseline):
    import math
    span = math.sqrt(baseline.area.footprint)
    for tree in trees:
        assert tree.wirelength >= span  # at least the trunk
        assert tree.wirelength < 100 * span


def test_clock_power_small_at_20mhz(trees):
    """At 20 MHz the clock network burns tens of milliwatts at most —
    a dilution term, not a ratio-flipping one."""
    for tree in trees:
        assert tree.power < 50e-3


def test_skew_within_budget(trees):
    for tree in trees:
        assert tree.skew_fraction_of_period() < 0.1


def test_buffers_positive(trees):
    for tree in trees:
        assert tree.buffer_count > 0


def test_power_scales_with_frequency(pdk, baseline):
    netlist = synthesize(baseline, pdk)
    plan = build_floorplan(netlist, baseline, pdk)
    slow = synthesize_clock_tree(plan, netlist, 20e6)
    fast = synthesize_clock_tree(plan, netlist, 40e6)
    assert fast.power == pytest.approx(2 * slow.power)
    # Skew is frequency-independent in absolute terms...
    assert fast.skew == pytest.approx(slow.skew)
    # ...so it consumes twice the fraction of a faster period.
    assert fast.skew_fraction_of_period() == pytest.approx(
        2 * slow.skew_fraction_of_period())


def test_invalid_frequency_rejected(pdk, baseline):
    netlist = synthesize(baseline, pdk)
    plan = build_floorplan(netlist, baseline, pdk)
    with pytest.raises(ConfigurationError):
        synthesize_clock_tree(plan, netlist, 0.0)
