"""Chaos tests: sweeps under deterministic fault injection.

The acceptance bar for the fault-tolerant runtime: a 500+-point sweep
with seeded worker crashes and one poison spec completes with exactly
one recorded failure, bit-identical results for every non-failed point
versus a fault-free run, and retry/pool-death counters that match the
injection schedule — reproducibly across runs with the same seed.

Every expected number here is *computed* from the plan's pure selection
function (`FaultPlan.selects`), never hardcoded from an observed run,
so the tests prove determinism rather than assuming it.
"""

from __future__ import annotations

import pytest

from repro.errors import EvaluationFailure, PermanentError, TransientError
from repro.faults import FaultPlan, FaultRule, clear_plan, injected_faults
from repro.runtime.engine import EvaluationEngine
from repro.runtime.keys import call_key
from repro.runtime.pmap import RetryPolicy
from repro.spec import evaluate_spec
from repro.spec.sweep import SweepSpec
from repro.sweep import SweepCheckpoint, run_streaming_sweep

BASE = {"arch": {}, "tech": {}, "workload": {"network": "resnet18"}}


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    clear_plan()
    yield
    clear_plan()


def _sweep(points: int) -> SweepSpec:
    return SweepSpec.from_jsonable({
        "base": BASE,
        "grid": {"tech.delta": [1.0 + i / 1000 for i in range(points)]},
    })


def _tokens(sweep: SweepSpec) -> list[str]:
    """The per-task fault tokens: the engine keys its injection points by
    the same call_key the cache uses, so tests can target exact specs."""
    return [call_key(evaluate_spec, (spec,), {})
            for spec in sweep.iter_specs()]


# --- the acceptance chaos sweep -------------------------------------------


CHAOS_POINTS = 504
CHAOS_SEED = 20230417
POISON_INDEX = 100


def _chaos_plan(state_dir: str, poison_token: str) -> FaultPlan:
    return FaultPlan(seed=CHAOS_SEED, state_dir=state_dir, rules=(
        # The poison spec: crashes its worker on *every* attempt, so
        # only quarantine can resolve it.  Listed first so it always
        # wins the race against the rate rule on its own token.
        FaultRule(site="task.crash", match=poison_token, times=0),
        # Background worker crashes: each selected task kills one pool,
        # then succeeds on redispatch (times=1).
        FaultRule(site="task.crash", rate=0.006, times=1),
        # Flaky transients: each selected task fails once, then the
        # seeded-backoff retry succeeds.
        FaultRule(site="task.transient", rate=0.012, times=1),
    ))


def _run_chaos(sweep: SweepSpec, state_dir: str, poison_token: str):
    plan = _chaos_plan(state_dir, poison_token)
    engine = EvaluationEngine(
        jobs=2, use_cache=False,
        retry_policy=RetryPolicy(max_retries=2, backoff_base=0.0,
                                 max_pool_deaths=2))
    with injected_faults(plan):
        result = run_streaming_sweep(sweep, engine=engine, chunk_size=128,
                                     max_failures=1)
    stage = next(s for s in engine.report().stages
                 if s.name == "sweep.evaluate")
    return result, stage


def test_chaos_sweep_matches_its_injection_schedule(tmp_path):
    sweep = _sweep(CHAOS_POINTS)
    tokens = _tokens(sweep)
    poison_token = tokens[POISON_INDEX]

    # The expected schedule is pure: compute it before running anything.
    schedule = _chaos_plan(str(tmp_path / "probe"), poison_token)
    crash_rule = schedule.rules[1]
    transient_rule = schedule.rules[2]
    crashed = {t for t in tokens
               if schedule.selects("task.crash", t)} - {poison_token}
    flaky = {t for t in tokens
             if transient_rule.match is None
             and schedule.selected_rules("task.transient", t)} \
        - {poison_token}
    assert crash_rule.times == 1 and transient_rule.times == 1
    # The chosen seed/rates must actually exercise both fault paths.
    assert len(crashed) >= 1
    assert len(flaky) >= 2
    expected_pool_deaths = len(crashed) + 2      # + poison's quarantine
    expected_retries = len(flaky)

    result, stage = _run_chaos(sweep, str(tmp_path / "run1"), poison_token)

    # Exactly one recorded failure: the poison spec, quarantined.
    assert result.points == CHAOS_POINTS
    assert result.failed == 1
    failure = result.failures[0]
    assert isinstance(failure, EvaluationFailure)
    assert failure.error_type == "poison_task_error"
    assert failure.pool_deaths == 2
    assert call_key(evaluate_spec, (failure.spec,), {}) == poison_token
    assert len(result.evaluations) == CHAOS_POINTS - 1

    # Counters match the computed schedule exactly.
    assert stage.failures == 1
    assert stage.retries == expected_retries
    assert stage.pool_deaths == expected_pool_deaths

    # Every non-failed point is bit-identical to a fault-free run.
    reference = run_streaming_sweep(
        sweep, engine=EvaluationEngine(jobs=1, use_cache=False),
        chunk_size=128)
    assert reference.failed == 0
    expected_evaluations = tuple(
        evaluation for index, evaluation
        in enumerate(reference.evaluations) if index != POISON_INDEX)
    assert result.evaluations == expected_evaluations


def test_chaos_sweep_is_deterministic_across_runs(tmp_path):
    sweep = _sweep(CHAOS_POINTS)
    poison_token = _tokens(sweep)[POISON_INDEX]
    first, first_stage = _run_chaos(sweep, str(tmp_path / "a"),
                                    poison_token)
    second, second_stage = _run_chaos(sweep, str(tmp_path / "b"),
                                      poison_token)
    assert first.evaluations == second.evaluations
    assert [f.error_type for f in first.failures] \
        == [f.error_type for f in second.failures]
    assert first.failures[0].spec == second.failures[0].spec
    assert (first_stage.retries, first_stage.pool_deaths,
            first_stage.failures) \
        == (second_stage.retries, second_stage.pool_deaths,
            second_stage.failures)


# --- partial-results streaming --------------------------------------------


def _always_failing(token: str) -> FaultPlan:
    """A plan under which one spec's every attempt raises TransientError,
    exhausting the retry budget — a deterministic permanent failure."""
    return FaultPlan(rules=(
        FaultRule(site="task.transient", match=token, times=0),))


def _small_engine() -> EvaluationEngine:
    return EvaluationEngine(
        jobs=1, use_cache=False,
        retry_policy=RetryPolicy(max_retries=1, backoff_base=0.0))


def test_strict_mode_still_raises_on_first_failure():
    sweep = _sweep(8)
    token = _tokens(sweep)[3]
    with injected_faults(_always_failing(token)):
        with pytest.raises(TransientError):
            run_streaming_sweep(sweep, engine=_small_engine(),
                                chunk_size=4)  # max_failures=0 default


def test_partial_mode_records_the_failure_and_finishes():
    sweep = _sweep(8)
    specs = list(sweep.iter_specs())
    token = _tokens(sweep)[3]
    with injected_faults(_always_failing(token)):
        result = run_streaming_sweep(sweep, engine=_small_engine(),
                                     chunk_size=4, max_failures=-1)
    assert result.points == 8
    assert result.failed == 1
    assert len(result.evaluations) == 7
    failure = result.failures[0]
    assert failure.error_type == "transient_error"
    assert failure.retries == 1          # the budget was spent first
    assert failure.spec == specs[3]
    assert result.evaluated == 7


def test_exceeding_the_failure_budget_raises_permanent_error(tmp_path):
    sweep = _sweep(8)
    tokens = _tokens(sweep)
    plan = FaultPlan(rules=(
        FaultRule(site="task.transient", match=tokens[1], times=0),
        FaultRule(site="task.transient", match=tokens[6], times=0),
    ))
    store_dir = tmp_path / "ckpt"
    with injected_faults(plan):
        with pytest.raises(PermanentError, match="max-failures"):
            run_streaming_sweep(sweep, engine=_small_engine(),
                                chunk_size=4, max_failures=1,
                                checkpoint=store_dir)
    # The breaching chunk was flushed before raising: both failures are
    # on disk, so a resume retries exactly them.
    store = SweepCheckpoint.for_sweep(store_dir, sweep, chunk_size=4)
    recorded = sum(len(store._records[i].failures)
                   for i in store._records)
    assert recorded == 2


def test_resume_retries_only_the_failed_points(tmp_path):
    sweep = _sweep(12)
    token = _tokens(sweep)[5]
    store_dir = tmp_path / "ckpt"
    with injected_faults(_always_failing(token)):
        broken = run_streaming_sweep(sweep, engine=_small_engine(),
                                     chunk_size=4, max_failures=-1,
                                     checkpoint=store_dir)
    assert broken.failed == 1

    # Faults cleared: the resume heals the failed point without
    # re-evaluating anything that already succeeded.
    engine = _small_engine()
    healed = run_streaming_sweep(sweep, engine=engine, chunk_size=4,
                                 max_failures=-1, checkpoint=store_dir)
    stage = next(s for s in engine.report().stages
                 if s.name == "sweep.evaluate")
    assert stage.evaluated == 1          # exactly the failed point
    assert healed.failed == 0
    assert healed.resumed_chunks == 3

    reference = run_streaming_sweep(
        sweep, engine=_small_engine(), chunk_size=4)
    assert healed.evaluations == reference.evaluations


# --- cache corruption ------------------------------------------------------


def test_corrupted_cache_entries_quarantine_and_reevaluate(tmp_path):
    """Injected on-disk corruption degrades to re-evaluation, never to a
    stale or wrong result, and the third run is fully warm again."""
    sweep = _sweep(6)
    cache_dir = tmp_path / "cache"
    corrupt_all = FaultPlan(rules=(
        FaultRule(site="cache.corrupt", rate=1.0, times=0),))

    with injected_faults(corrupt_all):
        first_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
        first = run_streaming_sweep(sweep, engine=first_engine,
                                    chunk_size=3)
    assert first_engine.cache.stats.stores == 6

    # Every disk entry is now garbage.  A fresh engine must quarantine
    # each one and re-evaluate, reproducing the fault-free values.
    second_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
    second = run_streaming_sweep(sweep, engine=second_engine,
                                 chunk_size=3)
    assert second_engine.cache.stats.corrupt == 6
    assert second_engine.cache.stats.disk_hits == 0
    assert second.evaluations == first.evaluations
    assert sorted(p.name for p in cache_dir.glob("*.corrupt"))  # evidence

    # The re-written entries are clean: run three is all disk hits.
    third_engine = EvaluationEngine(jobs=1, cache_dir=cache_dir)
    third = run_streaming_sweep(sweep, engine=third_engine, chunk_size=3)
    assert third_engine.cache.stats.corrupt == 0
    assert third_engine.cache.stats.disk_hits == 6
    assert third.evaluations == first.evaluations


def test_truncated_cache_entry_quarantines(tmp_path):
    from repro.runtime.cache import MISSING, ResultCache

    cache = ResultCache(directory=tmp_path)
    cache.put("k" * 40, {"value": 42})
    path = cache._disk_path("k" * 40)
    path.write_text(path.read_text(encoding="utf-8")[:10],
                    encoding="utf-8")
    fresh = ResultCache(directory=tmp_path)
    assert fresh.get("k" * 40) is MISSING
    assert fresh.stats.corrupt == 1
    assert not path.exists()             # moved aside, not served again
    assert path.with_suffix(".corrupt").exists()
    # The slot is reusable: a new write round-trips cleanly.
    fresh.put("k" * 40, {"value": 43})
    assert ResultCache(directory=tmp_path).get("k" * 40) == {"value": 43}
