"""Cycle-level simulator behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.simulator import AcceleratorSimulator, simulate
from repro.workloads.layers import FCLayer
from repro.workloads.models import Network, resnet18, vgg16


@pytest.fixture(scope="module")
def base_report(pdk, baseline, resnet18_network):
    return simulate(baseline, resnet18_network, pdk)


@pytest.fixture(scope="module")
def m3d_report(pdk, m3d, resnet18_network):
    return simulate(m3d, resnet18_network, pdk)


def test_report_covers_all_layers(base_report, resnet18_network):
    assert len(base_report.layers) == len(resnet18_network.layers)


def test_cycles_positive(base_report):
    for layer in base_report.layers:
        assert layer.cycles > 0


def test_baseline_uses_single_cs(base_report):
    for layer in base_report.layers:
        assert layer.used_cs == 1


def test_m3d_partitioning_caps_at_k_tiles(m3d_report):
    assert m3d_report.layer_result("L1.0 CONV1").used_cs == 4
    assert m3d_report.layer_result("L3.0 CONV2").used_cs == 8


def test_stem_row_packing_reduces_slabs(base_report, resnet18_network):
    """CONV1 (C=3) must not pay for 16-row slabs per kernel position."""
    stem = base_report.layer_result("CONV1")
    # 4 K-tiles x 2 packed row-tiles x 7 S-passes x (112^2 + 32) streaming.
    expected = 4 * 2 * 7 * (112 * 112 + 32)
    assert stem.compute_cycles == pytest.approx(expected)


def test_writeback_shared_not_parallelized(base_report, m3d_report):
    for name in ("L2.0 CONV2", "L4.1 CONV2"):
        assert (m3d_report.layer_result(name).writeback_cycles
                == pytest.approx(base_report.layer_result(name).writeback_cycles))


def test_l2_conv2_cycles_closed_form(base_report, baseline):
    """T = slabs * (OXOY + fill) + outputs / bus."""
    result = base_report.layer_result("L2.0 CONV2")
    slabs = 8 * 8 * 9
    expected = slabs * (784 + 32) + 128 * 784 * 8 / 128
    assert result.cycles == pytest.approx(expected)


def test_fc_weight_load_bound(pdk, baseline):
    """A huge FC layer on one CS is limited by weight streaming."""
    fc = FCLayer("FC", in_features=9216, out_features=4096)
    net = Network(name="fc_only", layers=(fc,))
    report = simulate(baseline, net, pdk)
    # Weight-load per slab (2048 bits / 256 bits-per-cycle = 8) is below
    # the 33-cycle fill-bound stream: the layer is fill-bound, not
    # bandwidth-bound, on a 256-bit channel.
    slabs = 256 * 576
    assert report.layers[0].compute_cycles == pytest.approx(slabs * 33)


def test_shared_channel_slows_weight_load(pdk, baseline):
    """A 4-CS 2D design shares the single 256-bit weight channel."""
    four_cs = baseline.with_n_cs(4)
    sim = AcceleratorSimulator(four_cs, pdk)
    fc = FCLayer("FC", in_features=4096, out_features=4096)
    used, compute, _ = sim._conv_fc_cycles(fc)
    assert used == 4
    # Per-CS channel is 64 bits -> 32 cycles per slab load, close to the
    # 33-cycle stream; the max() keeps streaming dominant (33).
    slabs_per_cs = 64 * 256
    assert compute == pytest.approx(slabs_per_cs * 33)


def test_pool_partitioned_across_cs(base_report, m3d_report):
    pool_2d = base_report.layer_result("POOL")
    pool_3d = m3d_report.layer_result("POOL")
    assert pool_3d.used_cs == 4  # 64 channels / 16 lanes
    assert pool_3d.compute_cycles == pytest.approx(pool_2d.compute_cycles / 4)


def test_energy_components_positive(base_report):
    for layer in base_report.layers:
        assert layer.dynamic_energy > 0
        assert layer.leakage_energy >= 0


def test_dynamic_energy_equal_across_designs(base_report, m3d_report):
    """Compute + weight-read energy is work-proportional, so dynamic energy
    differs only by the output-broadcast term (small)."""
    e2 = sum(l.dynamic_energy for l in base_report.layers)
    e3 = sum(l.dynamic_energy for l in m3d_report.layers)
    assert e3 == pytest.approx(e2, rel=0.05)


def test_m3d_static_power_higher(pdk, baseline, m3d):
    sim2 = AcceleratorSimulator(baseline, pdk)
    sim3 = AcceleratorSimulator(m3d, pdk)
    assert sim3.static_power > sim2.static_power


def test_report_totals_consistent(base_report):
    assert base_report.cycles == pytest.approx(
        sum(l.cycles for l in base_report.layers))
    assert base_report.energy == pytest.approx(
        sum(l.energy for l in base_report.layers))


def test_runtime_uses_cycle_time(base_report, baseline):
    assert base_report.runtime == pytest.approx(
        base_report.cycles * baseline.cycle_time)


def test_edp_product(base_report):
    assert base_report.edp == pytest.approx(
        base_report.energy * base_report.runtime)


def test_average_power_sane(base_report):
    """A 130 nm edge accelerator at 20 MHz burns milliwatts, not watts."""
    assert 1e-4 < base_report.average_power < 1.0


def test_oversized_network_rejected(pdk, baseline):
    with pytest.raises(ConfigurationError, match="do not fit"):
        simulate(baseline, vgg16(), pdk)


def test_layer_result_unknown_raises(base_report):
    with pytest.raises(KeyError):
        base_report.layer_result("L9.9")
