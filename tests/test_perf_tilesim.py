"""Tile-level event simulator: cross-validation and event invariants."""

import pytest

from repro.errors import ConfigurationError
from repro.perf.simulator import simulate
from repro.perf.tilesim import TileLevelSimulator, tile_simulate
from repro.workloads import build_network
from repro.workloads.models import vgg16


@pytest.fixture(scope="module")
def event_2d(pdk, baseline, resnet18_network):
    return tile_simulate(baseline, resnet18_network, pdk)


@pytest.fixture(scope="module")
def event_m3d(pdk, m3d, resnet18_network):
    return tile_simulate(m3d, resnet18_network, pdk)


@pytest.mark.parametrize("name", ["resnet18", "alexnet", "vgg16c",
                                  "resnet50"])
def test_event_sim_matches_closed_form_2d(pdk, baseline, name):
    """The closed-form model is validated by simulation, not assumed."""
    network = build_network(name)
    closed = simulate(baseline, network, pdk).cycles
    event = tile_simulate(baseline, network, pdk).cycles
    assert event == pytest.approx(closed, rel=0.02)


#: Bottleneck ResNets have many 1x1 convs whose drains partially overlap
#: other CSs' compute — the event model runs up to ~8% faster than the
#: additive closed form there (documented in EXPERIMENTS.md).
_M3D_TOLERANCE = {"resnet18": 0.02, "alexnet": 0.02, "vgg16c": 0.02,
                  "resnet50": 0.10}


@pytest.mark.parametrize("name", ["resnet18", "alexnet", "vgg16c",
                                  "resnet50"])
def test_event_sim_matches_closed_form_m3d(pdk, m3d, name):
    network = build_network(name)
    closed = simulate(m3d, network, pdk).cycles
    event = tile_simulate(m3d, network, pdk).cycles
    assert event == pytest.approx(closed, rel=_M3D_TOLERANCE[name])
    # The event model may only be faster (it can overlap drains with
    # compute); it must never exceed the additive bound.
    assert event <= closed * 1.001


def test_event_sim_reproduces_headline_speedup(event_2d, event_m3d):
    """5.64x from a completely independent timing engine."""
    speedup = event_2d.cycles / event_m3d.cycles
    assert speedup == pytest.approx(5.64, rel=0.05)


def test_event_sim_never_beats_compute_bound(pdk, m3d, resnet18_network):
    """No layer can finish faster than its per-CS compute."""
    report = tile_simulate(m3d, resnet18_network, pdk)
    sim = simulate(m3d, resnet18_network, pdk)
    for event_layer, closed_layer in zip(report.layers, sim.layers):
        assert event_layer.cycles >= closed_layer.compute_cycles * (1 - 1e-9)


def test_bus_busy_bounded_by_layer_cycles(event_m3d):
    for layer in event_m3d.layers:
        assert layer.bus_busy_cycles <= layer.cycles * (1 + 1e-9)


def test_cs_wait_at_least_bus_share(event_m3d):
    """Single-buffered outputs: every drain blocks its CS at least for the
    drain itself."""
    for layer in event_m3d.layers:
        assert layer.cs_wait_cycles >= layer.bus_busy_cycles * (1 - 1e-9)


def test_used_cs_matches_closed_form(pdk, m3d, resnet18_network):
    event = tile_simulate(m3d, resnet18_network, pdk)
    closed = simulate(m3d, resnet18_network, pdk)
    for ev, cl in zip(event.layers, closed.layers):
        assert ev.used_cs == cl.used_cs


def test_trace_events_well_formed(pdk, m3d, resnet18_network):
    sim = TileLevelSimulator(m3d, pdk, trace=True)
    layer = resnet18_network.layer("L2.0 CONV2")
    sim.run_layer(layer)
    events = sim._last_events
    assert events, "trace mode must record events"
    for event in events:
        assert event.end >= event.start
        assert event.kind in ("compute", "drain")


def test_trace_bus_events_fifo_nonoverlapping(pdk, m3d, resnet18_network):
    sim = TileLevelSimulator(m3d, pdk, trace=True)
    sim.run_layer(resnet18_network.layer("L3.0 CONV2"))
    drains = [e for e in sim._last_events if e.cs == -1]
    for first, second in zip(drains, drains[1:]):
        assert second.start >= first.end - 1e-9


def test_trace_off_by_default(event_m3d):
    assert event_m3d.events == ()


def test_batching_supported(pdk, m3d, resnet18_network):
    one = tile_simulate(m3d, resnet18_network, pdk, batch=1)
    four = tile_simulate(m3d, resnet18_network, pdk, batch=4)
    assert one.cycles < four.cycles < 4 * one.cycles


def test_runtime_uses_cycle_time(event_m3d, m3d):
    assert event_m3d.runtime == pytest.approx(
        event_m3d.cycles * m3d.cycle_time)


def test_oversized_network_rejected(pdk, baseline):
    with pytest.raises(ConfigurationError):
        tile_simulate(baseline, vgg16(), pdk)


def test_invalid_batch_rejected(pdk, m3d):
    with pytest.raises(ConfigurationError):
        TileLevelSimulator(m3d, pdk, batch=0)
