"""Memory hierarchy specs and the Table II architecture set."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.memory import (
    MemoryHierarchySpec,
    MemoryKind,
    MemoryLevelSpec,
    Operand,
)
from repro.arch.table2 import SpatialUnrolling, table_ii_architectures
from repro.units import KILOBYTE, MEGABYTE


@pytest.fixture(scope="module")
def archs():
    return table_ii_architectures()


def test_six_architectures(archs):
    assert len(archs) == 6
    assert [a.index for a in archs] == [1, 2, 3, 4, 5, 6]


def test_all_archs_have_1024_pes(archs):
    """Fig. 7 caption: all architectures normalized to the same PE count."""
    for arch in archs:
        assert arch.spatial.pe_count == 1024


def test_all_archs_have_256mb_rram(archs):
    for arch in archs:
        assert arch.rram_capacity_bits == 256 * MEGABYTE


def test_arch1_spatial_dims(archs):
    spatial = archs[0].spatial
    assert (spatial.k, spatial.c, spatial.ox, spatial.oy) == (16, 16, 2, 2)


def test_arch3_has_no_local_sram(archs):
    arch3 = archs[2]
    local_names = [level.name for level in arch3.hierarchy.levels
                   if level.name.startswith("local")]
    assert local_names == []


def test_arch3_has_big_registers(archs):
    arch3 = archs[2]
    reg_w = arch3.hierarchy.level("reg_W")
    assert reg_w.capacity_bits == 128 * 8  # 128 B per PE


def test_arch5_tiny_local_buffers(archs):
    arch5 = archs[4]
    assert arch5.hierarchy.level("local_W").capacity_bits == 1 * KILOBYTE


def test_arch6_small_global(archs):
    arch6 = archs[5]
    assert arch6.hierarchy.level("global_sram").capacity_bits \
        == int(0.5 * MEGABYTE)


def test_every_arch_has_rram_weight_home(archs):
    for arch in archs:
        rram = arch.hierarchy.level("rram")
        assert rram.kind == MemoryKind.RRAM
        assert Operand.WEIGHT in rram.operands


def test_spatial_unrolling_pe_count():
    assert SpatialUnrolling(k=8, c=8, ox=4, oy=4).pe_count == 1024


def test_spatial_unrolling_rejects_zero():
    with pytest.raises(ConfigurationError):
        SpatialUnrolling(k=0)


def test_levels_for_operand(archs):
    arch1 = archs[0]
    weight_levels = arch1.hierarchy.levels_for(Operand.WEIGHT)
    names = [level.name for level in weight_levels]
    assert names == ["reg_W", "local_W", "rram"]


def test_hierarchy_sram_bits(archs):
    arch2 = archs[1]
    assert arch2.hierarchy.on_chip_sram_bits() == 32 * KILOBYTE + 2 * MEGABYTE


def test_hierarchy_register_bits(archs):
    arch2 = archs[1]
    assert arch2.hierarchy.register_bits() == 1024 * (8 + 16)


def test_hierarchy_silicon_area_positive(archs, pdk):
    for arch in archs:
        assert arch.hierarchy.silicon_area(pdk) > 0


def test_rram_has_no_silicon_area(pdk):
    level = MemoryLevelSpec(name="rram", kind=MemoryKind.RRAM,
                            operands=(Operand.WEIGHT,),
                            capacity_bits=1024)
    assert level.area(pdk) == 0.0


def test_register_energy_cheapest():
    reg = MemoryLevelSpec(name="r", kind=MemoryKind.REGISTER,
                          operands=(Operand.WEIGHT,), capacity_bits=8)
    sram = MemoryLevelSpec(name="s", kind=MemoryKind.SRAM,
                           operands=(Operand.WEIGHT,), capacity_bits=8)
    rram = MemoryLevelSpec(name="m", kind=MemoryKind.RRAM,
                           operands=(Operand.WEIGHT,), capacity_bits=8)
    assert reg.energy_per_bit < sram.energy_per_bit < rram.energy_per_bit


def test_level_instances_multiply_capacity():
    level = MemoryLevelSpec(name="r", kind=MemoryKind.REGISTER,
                            operands=(Operand.WEIGHT,), capacity_bits=8,
                            instances=1024)
    assert level.total_capacity_bits == 8192


def test_hierarchy_rejects_duplicate_names():
    level = MemoryLevelSpec(name="x", kind=MemoryKind.SRAM,
                            operands=(Operand.INPUT,), capacity_bits=8)
    with pytest.raises(ConfigurationError):
        MemoryHierarchySpec(levels=(level, level))


def test_hierarchy_unknown_level_raises(archs):
    with pytest.raises(KeyError):
        archs[0].hierarchy.level("l3_cache")
