"""Block-level synthesis model."""

import pytest

from repro.physical.netlist import BlockKind, Net, Netlist, synthesize


@pytest.fixture(scope="module")
def net_2d(pdk, baseline):
    return synthesize(baseline, pdk)


@pytest.fixture(scope="module")
def net_m3d(pdk, m3d):
    return synthesize(m3d, pdk)


def test_2d_has_one_cs(net_2d):
    cs = [b for b in net_2d.blocks_of_kind(BlockKind.LOGIC)
          if b.name.startswith("cs")]
    assert len(cs) == 1


def test_m3d_has_eight_cs(net_m3d):
    cs = [b for b in net_m3d.blocks_of_kind(BlockKind.LOGIC)
          if b.name.startswith("cs")]
    assert len(cs) == 8


def test_rram_macros_match_banks(net_2d, net_m3d, baseline, m3d):
    assert len(net_2d.blocks_of_kind(BlockKind.RRAM_MACRO)) \
        == baseline.bank_plan.banks == 1
    assert len(net_m3d.blocks_of_kind(BlockKind.RRAM_MACRO)) \
        == m3d.bank_plan.banks == 8


def test_each_cs_has_buffer_macro(net_m3d):
    for index in range(8):
        block = net_m3d.block(f"cs{index}_buf")
        assert block.kind == BlockKind.SRAM_MACRO
        assert block.bits > 0


def test_rram_macros_on_rram_tier(net_m3d):
    for block in net_m3d.blocks_of_kind(BlockKind.RRAM_MACRO):
        assert block.tier == "rram"


def test_total_rram_bits_preserved(net_m3d, m3d):
    bits = sum(b.bits for b in net_m3d.blocks_of_kind(BlockKind.RRAM_MACRO))
    assert bits == pytest.approx(m3d.rram_capacity_bits, rel=0.01)


def test_bus_io_present(net_2d):
    assert net_2d.block("bus_io").kind == BlockKind.IO


def test_weight_channel_nets_reach_cs(net_m3d):
    weight_nets = [n for n in net_m3d.nets if n.name.startswith("n_weights")]
    assert len(weight_nets) == 8
    sinks = {n.sinks[0] for n in weight_nets}
    assert sinks == {f"cs{i}" for i in range(8)}


def test_writeback_net_broadcasts(net_m3d, m3d):
    net = next(n for n in net_m3d.nets if n.name == "n_writeback")
    assert net.width_bits == m3d.writeback_bus_bits
    assert len(net.sinks) == 1 + 8  # bus_io plus every CS buffer


def test_si_area_matches_design(net_2d, baseline):
    expected = (baseline.area.compute + baseline.area.peripherals
                + baseline.area.bus_io)
    assert net_2d.total_si_area == pytest.approx(expected, rel=0.01)


def test_blocks_on_tier_filter(net_m3d):
    si_names = {b.name for b in net_m3d.blocks_on_tier("si_cmos")}
    assert "cs0" in si_names
    assert "rram_bank0" not in si_names


def test_unknown_block_raises(net_2d):
    with pytest.raises(KeyError):
        net_2d.block("missing")


def test_net_validation_rejects_unknown_driver(net_2d):
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        Netlist(name="bad", blocks=dict(net_2d.blocks),
                nets=(Net(name="n", driver="ghost", sinks=("cs0",),
                          width_bits=8),))


def test_gate_count_totals_positive(net_m3d):
    assert net_m3d.total_gate_count > 1e6  # peripherals alone are 1.69M
