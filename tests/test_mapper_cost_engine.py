"""Mapper cost model and search engine."""

import pytest

from repro.errors import ConfigurationError
from repro.arch.table2 import table_ii_architectures
from repro.mapper.cost import CostModel, LoopOrder, Tiling
from repro.mapper.engine import MapperEngine, arch_static_power
from repro.mapper.loopnest import LoopNest, OperandKind, loop_nest_of
from repro.workloads.models import Network, alexnet, resnet18


@pytest.fixture(scope="module")
def archs():
    return {a.index: a for a in table_ii_architectures()}


@pytest.fixture(scope="module")
def arch1(archs):
    return archs[1]


@pytest.fixture
def nest():
    return LoopNest(k=128, c=64, ox=28, oy=28, r=3, s=3)


def test_utilization_full_for_aligned(arch1, nest):
    model = CostModel(arch1)
    assert model.utilization(nest) == pytest.approx(1.0)


def test_utilization_drops_for_shallow_channels(arch1):
    model = CostModel(arch1)
    nest = LoopNest(k=96, c=3, ox=55, oy=55, r=11, s=11)
    util = model.utilization(nest)
    assert util < 0.25  # C=3 on a 16-wide C dimension


def test_weight_tile_residency(arch1, nest):
    model = CostModel(arch1)
    small = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=16, toy=2)
    huge = Tiling(LoopOrder.WEIGHT_OUTER, tk=128, tc=64, toy=28)
    assert model.weight_tile_resident(nest, small)
    assert not model.weight_tile_resident(nest, huge)


def test_streaming_when_no_local_w(archs, nest):
    model = CostModel(archs[6])  # arch6 has no local_W
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=32, tc=32, toy=4)
    assert not model.weight_tile_resident(nest, tiling)


def test_weight_outer_reads_weights_once(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=16, toy=28)
    traffic = model.boundary_traffic(nest, tiling)
    assert traffic["rram_weight_reads"] == nest.operand_size(OperandKind.WEIGHT)


def test_output_outer_rereads_weights_per_row_tile(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.OUTPUT_OUTER, tk=16, tc=16, toy=7)
    traffic = model.boundary_traffic(nest, tiling)
    assert traffic["rram_weight_reads"] == \
        nest.operand_size(OperandKind.WEIGHT) * 4


def test_output_outer_writes_outputs_once(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.OUTPUT_OUTER, tk=16, tc=16, toy=7)
    traffic = model.boundary_traffic(nest, tiling)
    assert traffic["global_output_writes"] == \
        nest.operand_size(OperandKind.OUTPUT)
    assert traffic["global_output_reads"] == 0


def test_weight_outer_spills_outputs_without_local_o(archs, nest):
    """Arch 2 has no local output buffer: partial sums spill per C-tile."""
    model = CostModel(archs[2])
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=8, tc=8, toy=28)
    traffic = model.boundary_traffic(nest, tiling)
    nc = 64 // 8
    size_o = nest.operand_size(OperandKind.OUTPUT)
    assert traffic["global_output_writes"] == size_o * nc
    assert traffic["global_output_reads"] == size_o * (nc - 1)


def test_input_traffic_scales_with_k_tiles(arch1, nest):
    model = CostModel(arch1)
    few = Tiling(LoopOrder.WEIGHT_OUTER, tk=128, tc=64, toy=28)
    many = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=64, toy=28)
    t_few = model.boundary_traffic(nest, few)["global_input_reads"]
    t_many = model.boundary_traffic(nest, many)["global_input_reads"]
    assert t_many == pytest.approx(8 * t_few)


def test_evaluate_returns_positive_cost(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=16, toy=4)
    cost = model.evaluate(nest, tiling, rram_channel_bits=256)
    assert cost.cycles > 0
    assert cost.dynamic_energy > 0
    assert 0 < cost.utilization <= 1.0


def test_evaluate_latency_at_least_compute_bound(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=16, toy=4)
    cost = model.evaluate(nest, tiling, rram_channel_bits=256)
    assert cost.cycles >= nest.macs / 1024


def test_narrow_channel_slows_layer(arch1, nest):
    model = CostModel(arch1)
    tiling = Tiling(LoopOrder.WEIGHT_OUTER, tk=16, tc=16, toy=4)
    fast = model.evaluate(nest, tiling, rram_channel_bits=256)
    slow = model.evaluate(nest, tiling, rram_channel_bits=1)
    assert slow.cycles > fast.cycles


def test_engine_finds_mapping_for_all_alexnet_layers(archs, pdk):
    for index, arch in archs.items():
        engine = MapperEngine(arch, pdk, n_cs=1)
        report = engine.map_network(alexnet())
        assert report.cycles > 0, f"arch {index}"
        assert report.energy > 0, f"arch {index}"


def test_engine_m3d_faster_than_2d(arch1, pdk):
    net = alexnet()
    single = MapperEngine(arch1, pdk, n_cs=1).map_network(net)
    parallel = MapperEngine(arch1, pdk, n_cs=8).map_network(net)
    assert parallel.runtime < single.runtime


def test_engine_speedup_bounded_by_n(arch1, pdk):
    net = alexnet()
    single = MapperEngine(arch1, pdk, n_cs=1).map_network(net)
    parallel = MapperEngine(arch1, pdk, n_cs=8).map_network(net)
    assert single.runtime / parallel.runtime <= 8.0 + 1e-9


def test_engine_used_cs_respects_k_tiles(arch1, pdk):
    engine = MapperEngine(arch1, pdk, n_cs=8)
    layer = alexnet().layers[0]  # conv1: K = 96, k_sp = 16 -> 6 tiles
    mapping = engine.map_layer(layer)
    assert mapping.used_cs == 6


def test_engine_pool_layers_bypass_mapper(arch1, pdk):
    engine = MapperEngine(arch1, pdk, n_cs=4)
    pool = alexnet().layers[1]
    mapping = engine.map_layer(pool)
    assert mapping.slice_cost is None
    assert mapping.cycles > 0


def test_engine_shared_channel_penalty(arch1, pdk):
    """A shared weight channel divides per-CS bandwidth."""
    net = Network(name="fc", layers=(alexnet().layer("FC6"),))
    private = MapperEngine(arch1, pdk, n_cs=4,
                           shared_weight_channel=False).map_network(net)
    shared = MapperEngine(arch1, pdk, n_cs=4,
                          shared_weight_channel=True).map_network(net)
    assert shared.runtime >= private.runtime


def test_engine_rejects_oversized_network(arch1, pdk):
    from repro.workloads.models import vgg16
    from dataclasses import replace
    tiny = replace(arch1, rram_capacity_bits=1024)
    engine = MapperEngine(tiny, pdk)
    with pytest.raises(ConfigurationError):
        engine.map_network(vgg16())


def test_static_power_scales_with_cs(arch1, pdk):
    one = arch_static_power(arch1, pdk, 1)
    eight = arch_static_power(arch1, pdk, 8)
    assert eight == pytest.approx(8 * one)


def test_engine_rejects_zero_cs(arch1, pdk):
    with pytest.raises(ConfigurationError):
        MapperEngine(arch1, pdk, n_cs=0)


def test_mapping_report_totals(arch1, pdk):
    report = MapperEngine(arch1, pdk, n_cs=2).map_network(resnet18())
    assert report.cycles == pytest.approx(
        sum(l.cycles for l in report.layers))
    assert report.edp == pytest.approx(report.energy * report.runtime)


def test_mapping_report_describe(arch1, pdk):
    report = MapperEngine(arch1, pdk, n_cs=4).map_network(alexnet())
    text = report.describe()
    assert "alexnet" in text
    assert "CONV2" in text
    assert "pooling" in text
    assert "Tk=" in text
