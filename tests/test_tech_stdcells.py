"""Standard-cell libraries (Si and CNFET)."""

import pytest

from repro.errors import ConfigurationError
from repro.tech.node import NODE_130NM
from repro.tech.stackup import TierKind
from repro.tech.stdcells import cnfet_cell_library, silicon_cell_library


@pytest.fixture(scope="module")
def si_lib():
    return silicon_cell_library(NODE_130NM)


@pytest.fixture(scope="module")
def cnfet_lib():
    return cnfet_cell_library(NODE_130NM)


def test_library_has_reference_nand(si_lib):
    nand = si_lib.gate_equivalent
    assert nand.name == "NAND2_X1"
    assert nand.gate_equivalents == pytest.approx(1.0)


def test_nand_area_matches_node(si_lib):
    assert si_lib.gate_equivalent.area == pytest.approx(NODE_130NM.gate_area)


def test_library_contains_core_cells(si_lib):
    for name in ("INV_X1", "NOR2_X1", "XOR2_X1", "MUX2_X1", "FA_X1",
                 "DFF_X1", "BUF_X8"):
        assert si_lib.cell(name).name == name


def test_unknown_cell_raises(si_lib):
    with pytest.raises(KeyError):
        si_lib.cell("NAND99_X9")


def test_dff_larger_than_inverter(si_lib):
    assert si_lib.cell("DFF_X1").area > si_lib.cell("INV_X1").area


def test_stronger_buffer_has_lower_drive_resistance(si_lib):
    assert (si_lib.cell("BUF_X8").drive_resistance
            < si_lib.cell("INV_X1").drive_resistance)


def test_area_for_gates_linear(si_lib):
    assert si_lib.area_for_gates(1000) == pytest.approx(
        1000 * si_lib.gate_equivalent.area)


def test_energy_for_gates_scales_with_activity(si_lib):
    low = si_lib.energy_for_gates(1000, activity=0.05)
    high = si_lib.energy_for_gates(1000, activity=0.10)
    assert high == pytest.approx(2 * low)


def test_energy_rejects_invalid_activity(si_lib):
    with pytest.raises(ConfigurationError):
        si_lib.energy_for_gates(100, activity=1.5)


def test_leakage_for_gates_linear(si_lib):
    assert si_lib.leakage_for_gates(2000) == pytest.approx(
        2 * si_lib.leakage_for_gates(1000))


def test_cnfet_library_tier(cnfet_lib):
    assert cnfet_lib.tier_kind == TierKind.CNFET_LOGIC


def test_cnfet_cells_slower_than_silicon(si_lib, cnfet_lib):
    si_nand = si_lib.gate_equivalent
    cn_nand = cnfet_lib.gate_equivalent
    assert cn_nand.intrinsic_delay > si_nand.intrinsic_delay
    assert cn_nand.drive_resistance > si_nand.drive_resistance


def test_cnfet_cells_leak_less(si_lib, cnfet_lib):
    assert (cnfet_lib.gate_equivalent.leakage
            < si_lib.gate_equivalent.leakage)


def test_delay_with_load_monotonic(si_lib):
    nand = si_lib.gate_equivalent
    assert nand.delay_with_load(1e-14) > nand.delay_with_load(1e-15)


def test_delay_with_load_rejects_negative(si_lib):
    with pytest.raises(ConfigurationError):
        si_lib.gate_equivalent.delay_with_load(-1e-15)
