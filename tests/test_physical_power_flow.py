"""Per-tier power analysis and the full flow (Obs. 2)."""

import pytest

from repro.errors import ConfigurationError
from repro.physical.flow import run_flow
from repro.physical.power import ActivityFactors, analyze_power
from repro.physical.floorplan import build_floorplan
from repro.physical.netlist import synthesize
from repro.units import to_mw


@pytest.fixture(scope="module")
def flow_2d(pdk, baseline):
    return run_flow(baseline, pdk)


@pytest.fixture(scope="module")
def flow_m3d(pdk, m3d):
    return run_flow(m3d, pdk)


def test_flow_iso_footprint(flow_2d, flow_m3d):
    assert flow_2d.footprint == pytest.approx(flow_m3d.footprint)


def test_both_designs_close_timing(flow_2d, flow_m3d):
    assert flow_2d.closed_timing
    assert flow_m3d.closed_timing


def test_m3d_upper_tier_power_below_1pct(flow_m3d):
    """Obs. 2: power in the CNFET + RRAM tiers is < 1% of chip power."""
    assert flow_m3d.power.upper_tier_fraction < 0.01


def test_peak_power_density_within_1pct(flow_2d, flow_m3d):
    """Obs. 2: peak power density increases by just ~1%."""
    ratio = (flow_m3d.power.peak_power_density
             / flow_2d.power.peak_power_density)
    assert 1.0 <= ratio < 1.02


def test_m3d_total_power_higher_but_comparable(flow_2d, flow_m3d):
    """8 active CSs raise average power roughly with throughput."""
    assert flow_m3d.power.total > flow_2d.power.total
    assert flow_m3d.power.total < 10 * flow_2d.power.total


def test_chip_power_is_milliwatts(flow_2d):
    assert 1.0 < to_mw(flow_2d.power.total) < 1000.0


def test_per_tier_sums_to_total(flow_m3d):
    power = flow_m3d.power
    assert power.total == pytest.approx(sum(power.per_tier.values()))


def test_2d_has_no_cnfet_power(flow_2d):
    assert flow_2d.power.per_tier["cnfet"] == 0.0


def test_m3d_has_cnfet_power(flow_m3d):
    assert flow_m3d.power.per_tier["cnfet"] > 0.0


def test_per_block_covers_all_blocks(flow_m3d):
    assert set(flow_m3d.power.per_block) == set(flow_m3d.netlist.blocks)


def test_density_regions_group_cs_slots(flow_m3d):
    density = flow_m3d.power.block_density
    assert "cs0" in density
    assert "cs0_buf" not in density  # folded into the cs0 slot region


def test_higher_activity_more_power(pdk, m3d):
    netlist = synthesize(m3d, pdk)
    plan = build_floorplan(netlist, m3d, pdk)
    lazy = analyze_power(plan, netlist, m3d, pdk,
                         ActivityFactors(cs_compute=0.1))
    busy = analyze_power(plan, netlist, m3d, pdk,
                         ActivityFactors(cs_compute=0.9))
    assert busy.total > lazy.total


def test_activity_validation():
    with pytest.raises(ConfigurationError):
        ActivityFactors(cs_compute=1.5)


def test_flow_quality_metrics(flow_m3d):
    assert flow_m3d.quality["hpwl_metre_bits"] > 0


def test_m3d_inter_block_wl_larger_but_distributed(flow_2d, flow_m3d):
    """The M3D chip wires 8 CS slots and 8 banks; total metre-bits grow,
    while each weight channel stays short (CS under its bank)."""
    assert flow_m3d.routing.inter_block_wirelength \
        > flow_2d.routing.inter_block_wirelength


def test_flow_rejects_timing_failure(pdk, baseline):
    from dataclasses import replace
    fast = replace(baseline, frequency_hz=10e9)
    with pytest.raises(ConfigurationError, match="failed timing"):
        run_flow(fast, pdk)
