"""Property-based tests on geometry: bit-cells, rectangles, partitions."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.physical.floorplan import Rect
from repro.tech.ilv import ILVModel
from repro.tech.node import NODE_130NM
from repro.tech.rram import RRAMArray, default_rram_cell
from repro.workloads.layers import ConvLayer
from repro.workloads.partition import partition_plan

rects = st.builds(
    Rect,
    x=st.floats(min_value=-1e3, max_value=1e3),
    y=st.floats(min_value=-1e3, max_value=1e3),
    width=st.floats(min_value=1e-6, max_value=1e3),
    height=st.floats(min_value=1e-6, max_value=1e3),
)


@given(rects, rects)
def test_overlap_is_symmetric(a, b):
    assert a.overlaps(b) == b.overlaps(a)


@given(rects)
def test_rect_overlaps_itself(rect):
    assert rect.overlaps(rect)


@given(rects)
def test_rect_contains_itself(rect):
    assert rect.contains(rect)


@given(rects, rects)
def test_containment_implies_overlap(a, b):
    if a.contains(b) and b.width > 1e-3 and b.height > 1e-3:
        assert a.overlaps(b)


@given(st.floats(min_value=1.0, max_value=10.0),
       st.floats(min_value=1.0, max_value=10.0))
def test_cell_area_monotone_in_delta(d1, d2):
    cell = default_rram_cell(NODE_130NM)
    lo, hi = sorted((d1, d2))
    assert cell.with_access_width_factor(lo).area(None) \
        <= cell.with_access_width_factor(hi).area(None) + 1e-30


@given(st.floats(min_value=1e-8, max_value=1e-5),
       st.floats(min_value=1.0, max_value=10.0))
def test_cell_area_monotone_in_pitch(pitch, factor):
    cell = default_rram_cell(NODE_130NM)
    fine = ILVModel(pitch=pitch)
    coarse = fine.scaled(factor)
    assert cell.area(fine) <= cell.area(coarse) + 1e-30


@given(st.integers(min_value=1, max_value=int(1e9)))
def test_array_area_linear_in_bits(bits):
    cell = default_rram_cell(NODE_130NM)
    one = RRAMArray(cell=cell, capacity_bits=1).area
    many = RRAMArray(cell=cell, capacity_bits=bits).area
    assert math.isclose(many, bits * one, rel_tol=1e-9)


conv_layers = st.builds(
    ConvLayer,
    name=st.just("c"),
    in_channels=st.integers(min_value=1, max_value=512),
    out_channels=st.integers(min_value=1, max_value=512),
    kernel=st.sampled_from([1, 3, 5, 7]),
    stride=st.sampled_from([1, 2]),
    in_size=st.integers(min_value=8, max_value=224),
    padding=st.integers(min_value=0, max_value=3),
)


@given(conv_layers)
def test_conv_macs_identity(layer):
    assert layer.macs == layer.weights * layer.out_size ** 2


@given(conv_layers)
def test_conv_out_size_bounds(layer):
    assert 1 <= layer.out_size <= layer.in_size + 2 * layer.padding


@given(conv_layers, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=64))
def test_partition_plan_invariants(layer, n_cs, columns):
    plan = partition_plan(layer, n_cs, columns)
    assert 1 <= plan.used_cs <= min(n_cs, plan.tiles_total)
    assert plan.used_cs + plan.idle_cs == n_cs
    # The busiest CS covers its share: per-CS tiles x used >= total tiles.
    assert plan.tiles_per_cs * plan.used_cs >= plan.tiles_total
    assert 0 < plan.balance <= 1.0


@given(conv_layers, st.integers(min_value=1, max_value=32),
       st.integers(min_value=1, max_value=32))
def test_more_cs_never_increases_per_cs_load(layer, n_cs, columns):
    small = partition_plan(layer, n_cs, columns)
    large = partition_plan(layer, n_cs + 1, columns)
    assert large.tiles_per_cs <= small.tiles_per_cs
