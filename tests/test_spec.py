"""The declarative spec layer: serialization, sweeps, resolution, CLI."""

import json
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.errors import ConfigurationError
from repro.runtime.engine import EvaluationEngine
from repro.runtime.memo import reset_memoization
from repro.spec import (
    ArchSpec,
    DesignSpec,
    SweepSpec,
    TechSpec,
    WorkloadSpec,
    evaluate_spec,
    evaluate_specs,
    field_paths,
    load_design_spec,
    load_sweep_spec,
    resolve,
    scaled_pdk,
)
from repro.spec.design import BASELINE_POLICIES, CS_PRESETS
from repro.spec.sweep import reset_duplicate_axis_warnings
from repro.spec.resolve import build_workload
from repro.units import MEGABYTE
from repro.workloads.models import resnet18
from repro.workloads.transformer import tiny_encoder


# --- round-tripping --------------------------------------------------------------

def test_default_spec_is_the_case_study():
    spec = DesignSpec()
    assert spec.arch.capacity_bits == 64 * MEGABYTE
    assert spec.tech.delta == 1.0 and spec.tech.beta == 1.0
    assert spec.arch.baseline == "iso" and spec.arch.cs == "case-study"
    assert spec.workload.network == "resnet18"


def test_round_trip_identity():
    spec = DesignSpec(
        tech=TechSpec(delta=1.6, beta=1.3, memory="stt_mram"),
        arch=ArchSpec(capacity_bits=32 * MEGABYTE, tier_pairs=2,
                      baseline="reoptimized"),
        workload=WorkloadSpec(network="alexnet", batch=4),
    )
    assert DesignSpec.from_jsonable(spec.to_jsonable()) == spec
    assert DesignSpec.from_json(spec.to_json()) == spec


def test_json_form_is_plain():
    data = json.loads(DesignSpec().to_json())
    assert set(data) == {"tech", "arch", "workload", "flow"}
    assert data["arch"]["capacity_bits"] == 64 * MEGABYTE


def test_sections_may_be_omitted():
    spec = DesignSpec.from_jsonable({"arch": {"capacity_mb": 32}})
    assert spec.arch.capacity_bits == 32 * MEGABYTE
    assert spec.tech == TechSpec()


_SPECS = st.builds(
    DesignSpec,
    tech=st.builds(
        TechSpec,
        delta=st.floats(min_value=1.0, max_value=4.0,
                        allow_nan=False, allow_infinity=False),
        beta=st.floats(min_value=0.5, max_value=2.0,
                       allow_nan=False, allow_infinity=False),
        memory=st.sampled_from([None, "rram", "stt_mram", "fefet"]),
    ),
    arch=st.builds(
        ArchSpec,
        capacity_bits=st.integers(min_value=1, max_value=2 ** 40),
        tier_pairs=st.integers(min_value=1, max_value=8),
        n_cs=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
        baseline=st.sampled_from(BASELINE_POLICIES),
        cs=st.sampled_from(CS_PRESETS),
        precision_bits=st.sampled_from([4, 8, 16]),
    ),
    workload=st.builds(
        WorkloadSpec,
        network=st.sampled_from(["resnet18", "alexnet", "tiny_encoder"]),
        layer=st.none(),
        batch=st.integers(min_value=1, max_value=256),
    ),
)


@settings(max_examples=50, deadline=None)
@given(spec=_SPECS)
def test_random_specs_round_trip(spec):
    assert DesignSpec.from_json(spec.to_json()) == spec


@settings(max_examples=25, deadline=None)
@given(spec=_SPECS)
def test_fingerprint_is_content_based(spec):
    rebuilt = DesignSpec.from_json(spec.to_json())
    assert rebuilt.fingerprint() == spec.fingerprint()
    assert spec.with_capacity(spec.arch.capacity_bits + 1).fingerprint() \
        != spec.fingerprint()


# --- validation ------------------------------------------------------------------

def test_unknown_section_rejected():
    with pytest.raises(ConfigurationError, match="unknown key"):
        DesignSpec.from_jsonable({"tach": {"delta": 2.0}})


def test_unknown_key_rejected():
    with pytest.raises(ConfigurationError, match="unknown key"):
        DesignSpec.from_jsonable({"tech": {"gamma": 2.0}})


def test_bad_values_rejected():
    with pytest.raises(ConfigurationError):
        TechSpec(delta=0.5)
    with pytest.raises(ConfigurationError):
        TechSpec(beta=0.0)
    with pytest.raises(ConfigurationError):
        ArchSpec(baseline="grown")
    with pytest.raises(ConfigurationError):
        ArchSpec(capacity_bits=0)
    with pytest.raises(ConfigurationError):
        WorkloadSpec(batch=0)


def test_capacity_mb_and_bits_are_exclusive():
    with pytest.raises(ConfigurationError, match="not both"):
        DesignSpec.from_jsonable(
            {"arch": {"capacity_bits": 1, "capacity_mb": 64}})


def test_updated_applies_dotted_paths():
    spec = DesignSpec().updated(
        {"tech.delta": 1.6, "arch.capacity_mb": 32, "workload.batch": 4})
    assert spec.tech.delta == 1.6
    assert spec.arch.capacity_bits == 32 * MEGABYTE
    assert spec.workload.batch == 4


def test_updated_rejects_unknown_path():
    with pytest.raises(ConfigurationError, match="unknown spec path"):
        DesignSpec().updated({"tech.gamma": 2.0})
    with pytest.raises(ConfigurationError, match="unknown spec path"):
        DesignSpec().updated({"delta": 2.0})


def test_field_paths_cover_all_sections():
    paths = field_paths()
    assert "tech.delta" in paths
    assert "arch.capacity_bits" in paths
    assert "workload.network" in paths
    assert "flow.frequency_mhz" in paths


# --- sweeps ----------------------------------------------------------------------

def test_grid_expands_full_factorially_in_declaration_order():
    sweep = SweepSpec(grid={"arch.capacity_mb": [32, 64],
                            "tech.delta": [1.0, 2.0]})
    specs = sweep.expand()
    assert len(sweep) == len(specs) == 4
    knobs = [(s.arch.capacity_bits // MEGABYTE, s.tech.delta) for s in specs]
    assert knobs == [(32, 1.0), (32, 2.0), (64, 1.0), (64, 2.0)]


def test_zip_axes_advance_in_lockstep():
    sweep = SweepSpec(zipped={"arch.capacity_mb": [32, 64],
                              "tech.delta": [1.0, 2.0]})
    knobs = [(s.arch.capacity_bits // MEGABYTE, s.tech.delta)
             for s in sweep.expand()]
    assert knobs == [(32, 1.0), (64, 2.0)]


def test_zip_length_mismatch_rejected():
    with pytest.raises(ConfigurationError, match="same length"):
        SweepSpec(zipped={"arch.capacity_mb": [32, 64],
                          "tech.delta": [1.0]})


def test_unknown_axis_rejected():
    with pytest.raises(ConfigurationError, match="unknown grid axis"):
        SweepSpec(grid={"arch.capacity_gb": [1]})


def test_duplicate_axis_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        SweepSpec(grid=[("tech.delta", (1.0,)), ("tech.delta", (2.0,))])


def test_duplicate_grid_values_deduplicated_with_warning():
    reset_duplicate_axis_warnings()
    with pytest.warns(UserWarning, match="grid axis 'tech.delta' repeats "
                                         "1 value"):
        sweep = SweepSpec(grid={"tech.delta": [1.0, 2.0, 1.0],
                                "tech.beta": [1.0, 1.3]})
    assert dict(sweep.grid)["tech.delta"] == (1.0, 2.0)
    assert len(sweep) == 4
    deltas = [s.tech.delta for s in sweep.expand()]
    assert deltas == [1.0, 1.0, 2.0, 2.0]


def test_duplicate_grid_warning_fires_once_per_sweep_content():
    """One logical sweep warns once, however often it is reconstructed.

    Streaming and serving re-decode the same sweep repeatedly (wire
    decode, checkpoint resume, chunk replay) — without the content guard
    that re-warned once per chunk under an ``always`` warnings filter.
    """
    reset_duplicate_axis_warnings()
    document = {"grid": {"tech.delta": [1.0, 2.0, 1.0]}}
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        sweep = SweepSpec.from_jsonable(document)
        # Re-normalizations of the same content: reconstruction, wire
        # round-trip, and a chunked streaming run over the sweep.
        SweepSpec.from_jsonable(document)
        SweepSpec.from_jsonable(sweep.to_jsonable())
        from repro.runtime.engine import EvaluationEngine
        from repro.sweep import run_streaming_sweep

        result = run_streaming_sweep(sweep, engine=EvaluationEngine(),
                                     chunk_size=1)
    assert result.points == 2          # duplicates dropped exactly once
    dedup_warnings = [w for w in caught
                      if "repeats" in str(w.message)]
    assert len(dedup_warnings) == 1
    # A *different* duplication still warns.
    with pytest.warns(UserWarning, match="tech.beta"):
        SweepSpec(grid={"tech.beta": [1.0, 1.0]})


def test_unique_grid_values_warn_nothing():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sweep = SweepSpec(grid={"tech.delta": [1.0, 2.0]})
    assert dict(sweep.grid)["tech.delta"] == (1.0, 2.0)


def test_duplicate_zip_values_kept():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        sweep = SweepSpec(zipped={"arch.capacity_mb": [32, 32],
                                  "tech.delta": [1.0, 2.0]})
    assert len(sweep) == 2
    knobs = [(s.arch.capacity_bits // MEGABYTE, s.tech.delta)
             for s in sweep.expand()]
    assert knobs == [(32, 1.0), (32, 2.0)]


def test_sweep_round_trips():
    sweep = SweepSpec(base=DesignSpec().with_network("alexnet"),
                      grid={"tech.delta": [1.0, 2.0]},
                      points=(DesignSpec(),))
    assert SweepSpec.from_json(sweep.to_json()) == sweep


def test_sweep_points_merge_over_base():
    sweep = SweepSpec.from_jsonable({
        "base": {"workload": {"network": "alexnet"}},
        "points": [{"arch": {"capacity_mb": 32}}],
    })
    base_point, merged = sweep.expand()
    assert base_point == sweep.base
    assert merged.workload.network == "alexnet"
    assert merged.arch.capacity_bits == 32 * MEGABYTE


def test_plain_design_spec_loads_as_one_point_sweep(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(DesignSpec().to_json())
    sweep = load_sweep_spec(str(path))
    assert sweep.expand() == (DesignSpec(),)


# --- resolution ------------------------------------------------------------------

def test_default_spec_resolves_to_the_case_study_pair(pdk, baseline, m3d):
    point = resolve(DesignSpec(), pdk)
    assert point.baseline == baseline
    assert point.m3d == m3d
    assert point.network == resnet18()


def test_resolution_is_memoized_on_content(pdk):
    spec = DesignSpec(tech=TechSpec(delta=1.3))
    rebuilt = DesignSpec.from_json(spec.to_json())
    assert resolve(spec, pdk) is resolve(rebuilt, pdk)


def test_explicit_n_cs_override(pdk):
    point = resolve(DesignSpec(arch=ArchSpec(n_cs=3)), pdk)
    assert point.n_cs_m3d == 3


def test_tier_pairs_multiply_the_cs_count(pdk):
    single = resolve(DesignSpec(), pdk)
    double = resolve(DesignSpec(arch=ArchSpec(tier_pairs=2)), pdk)
    assert double.n_cs_m3d == 2 * single.n_cs_m3d


def test_reoptimized_baseline_grows_with_delta(pdk):
    spec = DesignSpec(tech=TechSpec(delta=2.0),
                      arch=ArchSpec(baseline="reoptimized"))
    point = resolve(spec, pdk)
    assert point.n_cs_2d > 1
    assert point.baseline.area.footprint == pytest.approx(point.footprint)


def test_scaled_pdk_is_identity_at_unity(pdk):
    assert scaled_pdk(pdk, 1.0) is pdk
    assert scaled_pdk(pdk, 2.0).ilv.pitch == 2.0 * pdk.ilv.pitch


def test_build_workload_matches_the_zoo():
    assert build_workload(WorkloadSpec(network="resnet18")) == resnet18()
    assert build_workload(WorkloadSpec(network="tiny_encoder")) \
        == tiny_encoder()


def test_build_workload_layer_restriction():
    network = build_workload(
        WorkloadSpec(network="resnet18", layer="L4.1 CONV2"))
    assert network.name == "resnet18_L4.1_CONV2"
    assert len(network.layers) == 1


def test_build_workload_rejects_unknown_network():
    with pytest.raises(ConfigurationError, match="unknown workload network"):
        build_workload(WorkloadSpec(network="resnet9000"))


# --- evaluation + restart-surviving cache keys -----------------------------------

def test_disk_cache_hits_survive_a_process_restart(tmp_path, pdk):
    """Spec-fingerprint keys are content hashes: a fresh engine (fresh
    memory tier, same directory) serves the result from disk without
    evaluating — the property the identity-keyed memo tables lacked."""
    spec = DesignSpec(arch=ArchSpec(capacity_bits=16 * MEGABYTE))
    cold_engine = EvaluationEngine(cache_dir=str(tmp_path))
    (cold,) = evaluate_specs([spec], engine=cold_engine)
    assert cold_engine.report().evaluated == 1

    # Simulate the restart: drop every in-process memo table and build a
    # brand-new engine over the same cache directory, then re-submit a
    # freshly parsed (different-identity) but content-equal spec.
    reset_memoization()
    warm_engine = EvaluationEngine(cache_dir=str(tmp_path))
    (warm,) = evaluate_specs([DesignSpec.from_json(spec.to_json())],
                             engine=warm_engine)
    report = warm_engine.report()
    assert report.evaluated == 0
    assert report.cache_hits == 1
    assert warm == cold


def test_duplicate_specs_deduplicate_in_a_batch(pdk):
    spec = DesignSpec()
    engine = EvaluationEngine()
    first, second = evaluate_specs(
        [spec, DesignSpec.from_json(spec.to_json())], engine=engine)
    assert first == second
    stats = engine.report().stage("spec.evaluate")
    assert stats.evaluated + stats.cache_hits == 1


def test_evaluate_spec_reports_the_headline_benefit(pdk):
    evaluation = evaluate_spec(DesignSpec(), pdk)
    assert evaluation.n_cs_2d == 1
    assert evaluation.n_cs_m3d == 8
    assert evaluation.speedup > 5.0


# --- satellite: sensitivity parameter validation ---------------------------------

def test_sensitivity_rejects_unknown_parameter(pdk, baseline, m3d):
    from repro.core.framework import Workload
    from repro.core.params import design_point
    from repro.core.sensitivity import _perturbed, elasticity

    workload = Workload(compute_ops=1e9, data_bits=1e9)
    base, dut = design_point(baseline, pdk), design_point(m3d, pdk)
    with pytest.raises(ConfigurationError, match="unknown parameter"):
        elasticity(workload, base, dut, "peak_flops")
    # The perturbation itself validates against the DesignPoint fields up
    # front instead of letting dataclasses.replace fail mid-profile.
    with pytest.raises(ConfigurationError, match="unknown design-point"):
        _perturbed(base, "peak_flops", 1.01)


# --- CLI -------------------------------------------------------------------------

@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(
        {"arch": {"capacity_mb": 16}, "workload": {"network": "resnet18"}}))
    return str(path)


def test_cli_eval_runs_a_spec(capsys, spec_file):
    assert main(["eval", "--spec", spec_file]) == 0
    out = capsys.readouterr().out
    assert "Spec evaluation" in out
    assert "16 MB" in out


def test_cli_sweep_runs_a_sweep(capsys, tmp_path):
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(
        {"grid": {"arch.capacity_mb": [16, 32]}}))
    assert main(["sweep", "--spec", str(path)]) == 0
    out = capsys.readouterr().out
    assert "(2 points)" in out
    assert "32 MB" in out


def test_cli_eval_requires_spec(capsys):
    assert main(["eval"]) == 2
    assert "--spec" in capsys.readouterr().err


def test_cli_rejects_a_bad_spec_file(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"tech": {"gamma": 2}}')
    assert main(["eval", "--spec", str(path)]) == 2
    assert "bad --spec" in capsys.readouterr().err
    assert main(["fig9", "--spec", str(path)]) == 2
    assert "bad --spec" in capsys.readouterr().err


def test_cli_experiment_accepts_a_base_spec(capsys, spec_file):
    assert main(["obs10", "--spec", spec_file]) == 0
    assert "60 K" in capsys.readouterr().out


def test_cli_lists_the_spec_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "eval" in out and "sweep" in out


def test_load_design_spec_missing_file():
    with pytest.raises(ConfigurationError, match="cannot read"):
        load_design_spec("/nonexistent/spec.json")
