"""Folding-only baseline and the spatial thermal map."""

import numpy as np
import pytest

from repro.experiments.folding import format_folding, run_folding
from repro.physical.flow import run_flow
from repro.physical.thermal_map import (
    GRID,
    power_density_grid,
    solve_thermal_map,
)


@pytest.fixture(scope="module")
def folding(pdk):
    return run_folding(pdk)


@pytest.fixture(scope="module")
def flows(pdk, baseline, m3d):
    return run_flow(baseline, pdk), run_flow(m3d, pdk)


@pytest.fixture(scope="module")
def maps(flows):
    flow_2d, flow_m3d = flows
    return (solve_thermal_map(flow_2d.floorplan, flow_2d.power),
            solve_thermal_map(flow_m3d.floorplan, flow_m3d.power))


# --- folding ---------------------------------------------------------------------

def test_folded_footprint_shrinks(folding):
    assert folding.footprint_folded < folding.footprint_2d
    assert 0.5 < folding.footprint_ratio < 0.8


def test_folded_wirelength_about_80pct(folding):
    """Prior work [3-4] reports ~20% wirelength reduction."""
    assert folding.wirelength_ratio == pytest.approx(0.8, abs=0.05)


def test_folded_edp_in_prior_work_band(folding):
    """[3-4]: folding alone is worth ~1.1-1.4x."""
    assert 1.05 <= folding.folded_edp_benefit <= 1.5


def test_architecture_dwarfs_folding(folding):
    """The paper's thesis: design points, not folding, carry the benefit."""
    assert folding.architectural_edp_benefit > 4 * folding.folded_edp_benefit


def test_folding_components_multiply(folding):
    assert folding.folded_edp_benefit == pytest.approx(
        folding.folded_speedup * folding.folded_energy_benefit)


def test_folding_format(folding):
    text = format_folding(folding)
    assert "folded EDP benefit" in text
    assert "architecture / folding" in text


# --- thermal map -----------------------------------------------------------------------

def test_power_grid_conserves_power(flows):
    flow_2d, _ = flows
    grid, _ = power_density_grid(flow_2d.floorplan, flow_2d.power)
    assert grid.sum() == pytest.approx(flow_2d.power.total, rel=0.01)


def test_power_grid_shape(flows):
    flow_2d, _ = flows
    grid, cell = power_density_grid(flow_2d.floorplan, flow_2d.power)
    assert grid.shape == (GRID, GRID)
    assert cell > 0


def test_thermal_rise_nonnegative(maps):
    for thermal in maps:
        assert float(thermal.rise.min()) >= 0.0


def test_hotspot_at_least_average(maps):
    for thermal in maps:
        assert thermal.hotspot >= thermal.average


def test_case_study_thermally_trivial(maps):
    """Obs. 2's conclusion: no additional thermal management needed."""
    _, m3d_map = maps
    assert m3d_map.hotspot < 0.1  # kelvin


def test_m3d_hotspot_close_to_2d(maps):
    """The spatial extension of Obs. 2: the hotspot rise stays within a
    few percent despite 8 active CSs (activity spreads out)."""
    map_2d, map_m3d = maps
    assert map_m3d.hotspot / map_2d.hotspot < 1.15


def test_m3d_average_warmer(maps):
    """More total power -> warmer on average, but spread, not peaked."""
    map_2d, map_m3d = maps
    assert map_m3d.average > map_2d.average


def test_hotspot_location_in_die(flows, maps):
    flow_2d, _ = flows
    thermal, _ = maps
    x, y = thermal.hotspot_location
    die = flow_2d.floorplan.die
    assert 0 <= x <= die.width * (1 + 1 / GRID)
    assert 0 <= y <= die.height * (1 + 1 / GRID)


def test_rise_at_matches_grid(maps):
    thermal, _ = maps
    x, y = thermal.hotspot_location
    assert thermal.rise_at(x, y) == pytest.approx(thermal.hotspot)


def test_uniform_power_gives_flat_field(flows):
    """Property: a uniform source solves to a near-uniform field."""
    flow_2d, _ = flows
    from repro.physical.thermal_map import ThermalMap
    import repro.physical.thermal_map as tm
    source = np.ones((GRID, GRID)) * 1e-4
    # Re-use the solver internals through a synthetic uniform report.
    cells = flow_2d.floorplan.die.area
    # Solve manually: with uniform source, lateral terms cancel.
    from repro.tech import constants
    g_v = 1.0 / (constants.THERMAL_R_AMBIENT * GRID * GRID)
    expected = 1e-4 / g_v
    # Interior cells of an actual solve should approach the closed form.
    temp = np.full((GRID, GRID), expected)
    residual = g_v * temp - source
    assert np.allclose(residual, 0.0, atol=1e-9)
